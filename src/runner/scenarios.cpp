// Built-in scenario definitions: every figure of the paper's §5 plus the
// exploratory workloads that go beyond it. Each definition replaces what
// used to be a hand-rolled bench binary; see EXPERIMENTS.md for the figure
// -> scenario mapping.

#include <algorithm>
#include <cstdint>
#include <iterator>

#include "protocol/registry.hpp"
#include "runner/registry.hpp"
#include "runner/sweep.hpp"
#include "runner/worlds.hpp"
#include "util/expect.hpp"

namespace frugal::runner {

namespace {

// ---------------------------------------------------------------------------
// Shared metric extractors.

MetricSpec reliability_metric() {
  return {"reliability", 3,
          [](const core::RunResult& result, const ParamPoint&) {
            return result.reliability();
          }};
}

/// Reliability evaluated at probe validity `v_s` from the recorded delivery
/// times — one run yields the whole validity axis (see experiment.hpp).
MetricSpec rel_probe(double v_s) {
  return {"rel@" + stats::format_double(v_s, 0) + "s", 3,
          [v_s](const core::RunResult& result, const ParamPoint&) {
            return result.reliability_within(SimDuration::from_seconds(v_s));
          },
          v_s};
}

std::vector<MetricSpec> rel_probes(const std::vector<double>& validities) {
  std::vector<MetricSpec> metrics;
  metrics.reserve(validities.size());
  for (const double v : validities) metrics.push_back(rel_probe(v));
  return metrics;
}

MetricSpec bytes_metric() {
  return {"bytes_per_node", 0,
          [](const core::RunResult& result, const ParamPoint&) {
            return result.mean_bytes_sent_per_node();
          }};
}

MetricSpec copies_metric() {
  return {"events_sent_per_node", 1,
          [](const core::RunResult& result, const ParamPoint&) {
            return result.mean_events_sent_per_node();
          }};
}

MetricSpec duplicates_metric() {
  return {"duplicates_per_node", 1,
          [](const core::RunResult& result, const ParamPoint&) {
            return result.mean_duplicates_per_node();
          }};
}

MetricSpec parasites_metric() {
  return {"parasites_per_node", 1,
          [](const core::RunResult& result, const ParamPoint&) {
            return result.mean_parasites_per_node();
          }};
}

MetricSpec latency_metric() {
  return {"mean_latency_s", 2,
          [](const core::RunResult& result, const ParamPoint&) {
            return result.mean_delivery_latency_s();
          }};
}

/// Causal-dissemination metrics (RunResult::dissem). Declaring needs_dissem
/// makes the sweep runner attach a stats-only DisseminationTracer to every
/// job of the scenario — columns identical whether or not --dissem-trace
/// also asked for the artifact.
MetricSpec mean_hops_metric() {
  MetricSpec metric{"mean_hops_to_deliver", 2,
                    [](const core::RunResult& result, const ParamPoint&) {
                      return result.mean_hops_to_deliver();
                    }};
  metric.needs_dissem = true;
  return metric;
}

MetricSpec redundancy_metric() {
  MetricSpec metric{"redundancy_ratio", 2,
                    [](const core::RunResult& result, const ParamPoint&) {
                      return result.redundancy_ratio();
                    }};
  metric.needs_dissem = true;
  return metric;
}

MetricSpec gc_evictions_metric() {
  return {"gc_evictions_per_node", 1,
          [](const core::RunResult& result, const ParamPoint&) {
            return result.mean_gc_evictions_per_node();
          }};
}

MetricSpec joules_per_event_metric() {
  return {"joules_per_delivered_event", 2,
          [](const core::RunResult& result, const ParamPoint&) {
            return result.joules_per_delivered_event();
          }};
}

MetricSpec joules_per_node_metric() {
  return {"mean_joules_per_node", 1,
          [](const core::RunResult& result, const ParamPoint&) {
            return result.mean_joules_per_node();
          }};
}

MetricSpec first_death_metric() {
  return {"first_death_s", 1,
          [](const core::RunResult& result, const ParamPoint&) {
            return result.first_depletion_s();
          }};
}

MetricSpec survivors_metric() {
  return {"survivor_fraction", 3,
          [](const core::RunResult& result, const ParamPoint&) {
            return result.survivor_fraction();
          }};
}

// ---------------------------------------------------------------------------
// Shared axes.

Axis axis(std::string name, std::vector<double> values,
          std::vector<double> full_values = {}) {
  Axis result;
  result.name = std::move(name);
  result.values = std::move(values);
  result.full_values = std::move(full_values);
  return result;
}

std::string protocol_label(double value) {
  const protocol::ProtocolSpec* spec =
      protocol::protocol_by_ordinal(static_cast<int>(value));
  return spec != nullptr ? spec->name : stats::format_double(value, 0);
}

/// Registered ordinal of a protocol name; aborts (with a listing) on a name
/// nobody registered, so a misspelled axis value cannot run the wrong
/// protocol.
double protocol_ordinal(std::string_view name) {
  return static_cast<double>(protocol::require_protocol(name).ordinal);
}

Axis protocol_axis(std::vector<double> values) {
  Axis axis;
  axis.name = "protocol";
  axis.values = std::move(values);
  axis.format = protocol_label;
  // The inverse: lets --grid protocol=frugal,gossip and shard artifacts
  // round-trip protocol identity by registered name.
  axis.parse = [](std::string_view token) -> std::optional<double> {
    const protocol::ProtocolSpec* spec = protocol::find_protocol(token);
    if (spec == nullptr) return std::nullopt;
    return static_cast<double>(spec->ordinal);
  };
  return axis;
}

/// The city figures publish from every process in turn and average over
/// publishers (aggregate axis), as the paper does.
Axis city_publisher_axis(bool aggregate) {
  Axis axis;
  axis.name = "publisher";
  axis.values.reserve(15);
  for (int p = 0; p < 15; ++p) axis.values.push_back(p);
  axis.aggregate = aggregate;
  return axis;
}

/// Cheaper aggregate publisher axis for the exploratory city families: a
/// spread sample of three processes by default, all 15 under --full.
Axis city_publisher_axis_sampled() {
  Axis axis = city_publisher_axis(/*aggregate=*/true);
  axis.full_values = axis.values;
  axis.values = {0, 7, 14};
  return axis;
}

std::string protocol_of(const ParamPoint& point) {
  const protocol::ProtocolSpec* spec = protocol::protocol_by_ordinal(
      static_cast<int>(point.get("protocol")));
  FRUGAL_EXPECT(spec != nullptr);
  return spec->name;
}

// ---------------------------------------------------------------------------
// Figures 11/12: random-waypoint reliability surfaces.

ScenarioSpec fig11_spec() {
  ScenarioSpec spec;
  spec.name = "fig11_rwp_reliability";
  spec.figure = "Figure 11";
  spec.title = "Fig 11 reliability vs validity x speed x subscribers (RWP)";
  spec.description =
      "Reception probability vs validity period, process speed and "
      "subscriber fraction, random waypoint, 150 processes over 25 km^2";
  spec.axes = {axis("interest", {0.2, 0.8}),
               axis("speed_mps", {0, 1, 10, 20, 40},
                    {0, 1, 5, 10, 20, 30, 40})};
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    const double speed = point.get("speed_mps");
    return rwp_world(speed, speed, point.get("interest"), seed);
  };
  spec.metrics = rel_probes({20, 40, 60, 80, 100, 120, 140, 160, 180});
  spec.expected_shape =
      "Expected shape (paper): reliability rises with validity and with "
      "speed; the 20% surface stays low (30 subscribers over 25 km^2 is too "
      "sparse) while 80% reaches ~0.95 at 10 mps x 180 s.";
  return spec;
}

ScenarioSpec fig12_spec() {
  ScenarioSpec spec;
  spec.name = "fig12_heterogeneous";
  spec.figure = "Figure 12";
  spec.title = "Fig 12 reliability, heterogeneous 1-40 mps (RWP)";
  spec.description =
      "Reception probability vs validity and subscribers when every process "
      "draws its own constant speed from U[1, 40] mps";
  spec.axes = {axis("interest", {0.2, 0.4, 0.6, 0.8, 1.0},
                    {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0})};
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    return rwp_world(1.0, 40.0, point.get("interest"), seed);
  };
  spec.metrics = rel_probes({20, 40, 60, 80, 100, 120, 140, 160, 180});
  spec.expected_shape =
      "Expected shape (paper): low interest => low reliability; from ~60% "
      "interest a 120 s validity already reaches everyone — overall "
      "reliability tracks the network's average speed (~20 mps), not "
      "individual speeds.";
  return spec;
}

// ---------------------------------------------------------------------------
// Figures 13-16: city-section model.

core::ExperimentConfig city_config(const ParamPoint& point,
                                   std::uint64_t seed, double interest) {
  core::ExperimentConfig config = city_world(interest, seed);
  config.publisher = static_cast<NodeId>(point.get("publisher"));
  return config;
}

ScenarioSpec fig13_spec() {
  ScenarioSpec spec;
  spec.name = "fig13_heartbeat";
  spec.figure = "Figure 13";
  spec.title = "Fig 13 reliability vs heartbeat upper bound (city section)";
  spec.description =
      "Reception probability vs heartbeat upper bound (1-5 s), city "
      "section, 100% subscribers, every process publishing in turn";
  spec.axes = {axis("hb_upper_s", {1, 2, 3, 4, 5}),
               city_publisher_axis(/*aggregate=*/true)};
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    core::ExperimentConfig config = city_config(point, seed, 1.0);
    config.frugal.hb_upper =
        SimDuration::from_seconds(point.get("hb_upper_s"));
    return config;
  };
  spec.metrics = {reliability_metric()};
  spec.expected_shape =
      "Expected shape (paper: 76.9 / 75.1 / 65.5 / 69.9 / 54.0 %): "
      "reliability degrades as heartbeats slow from 1-2 s to 5 s (~20 pts "
      "lost), with a non-monotonic dip near 3 s attributed to heartbeat "
      "collisions.";
  return spec;
}

ScenarioSpec fig14_spec() {
  ScenarioSpec spec;
  spec.name = "fig14_city_subscribers";
  spec.figure = "Figure 14";
  spec.title = "Fig 14 reliability vs subscribers (city section)";
  spec.description =
      "Reception probability vs subscriber fraction, city section, every "
      "process publishing in turn";
  spec.axes = {axis("interest", {0.2, 0.4, 0.6, 0.8, 1.0}),
               city_publisher_axis(/*aggregate=*/true)};
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    return city_config(point, seed, point.get("interest"));
  };
  spec.metrics = {reliability_metric()};
  spec.expected_shape =
      "Expected shape (paper: 58.1 / 59.7 / 62.5 / 68.6 / 76.9 %): "
      "reliability grows slowly with the subscriber fraction, and even 20% "
      "subscribers reach ~60% — constrained paths make encounters far more "
      "likely than in the random waypoint model.";
  return spec;
}

ScenarioSpec fig15_spec() {
  ScenarioSpec spec;
  spec.name = "fig15_publisher_spread";
  spec.figure = "Figure 15";
  spec.title = "Fig 15 publisher reliability spread (city section)";
  spec.description =
      "Max-over-publishers minus min-over-publishers reliability per "
      "subscriber fraction: how much the publisher's path matters";
  spec.axes = {axis("interest", {0.2, 0.4, 0.6, 0.8, 1.0}),
               city_publisher_axis(/*aggregate=*/false)};
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    return city_config(point, seed, point.get("interest"));
  };
  spec.metrics = {reliability_metric()};
  spec.suppress_point_table = true;
  spec.post = [](const SweepResult& sweep) {
    // Per-publisher means (seed-averaged) grouped by the leading interest
    // axis; the spread is the paper's "difference between the minimum and
    // maximum reliability between the publishers".
    FRUGAL_EXPECT(!sweep.axes.empty() && sweep.axes[0].name == "interest");
    stats::Table table{"Fig 15 publisher reliability spread",
                       {"subscribers[%]", "max-min[pp]", "best[%]",
                        "worst[%]"}};
    std::size_t i = 0;
    while (i < sweep.points.size()) {
      const double interest = sweep.points[i].point.values[0];
      double best = 0.0;
      double worst = 1.0;
      for (; i < sweep.points.size() &&
             sweep.points[i].point.values[0] == interest;
           ++i) {
        const double mean = sweep.points[i].metrics[0].mean();
        best = std::max(best, mean);
        worst = std::min(worst, mean);
      }
      table.add_numeric_row(
          {interest * 100, (best - worst) * 100, best * 100, worst * 100},
          1);
    }
    return std::vector<stats::Table>{table};
  };
  spec.expected_shape =
      "Expected shape (paper: 40.9 / 44.7 / 47.9 / 53.9 / 60.0 pp): a "
      "large gap between the luckiest and unluckiest publisher at every "
      "subscriber fraction, growing with the fraction.";
  return spec;
}

ScenarioSpec fig16_spec() {
  ScenarioSpec spec;
  spec.name = "fig16_city_validity";
  spec.figure = "Figure 16";
  spec.title = "Fig 16 reliability vs event validity (city section)";
  spec.description =
      "Reception probability vs validity period (25-150 s), city section, "
      "100% subscribers, every process publishing in turn";
  spec.axes = {city_publisher_axis(/*aggregate=*/true)};
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    return city_config(point, seed, 1.0);
  };
  spec.metrics = rel_probes({25, 50, 75, 100, 125, 150});
  spec.expected_shape =
      "Expected shape (paper: 11 / 27 / 44 / 52 / 69 / 77 %): reliability "
      "grows steeply and roughly linearly with validity — processes meet at "
      "hot spots, so long-lived events profit from later encounters.";
  return spec;
}

// ---------------------------------------------------------------------------
// Figures 17-20: the frugality comparison (frugal vs flooding variants).

/// The shared sweep: events x interest x all four protocols, RWP at 10 mps
/// with 400-byte events. Default mode runs half the paper's node count over
/// half the area (identical density, ~4x faster); FRUGAL_FULL restores the
/// paper's 150 nodes over 25 km^2 and the full grid.
ScenarioSpec frugality_spec(const char* name, const char* figure,
                            const char* title, const char* description,
                            MetricSpec metric, const char* expected_shape) {
  ScenarioSpec spec;
  spec.name = name;
  spec.figure = figure;
  spec.title = title;
  spec.description = description;
  spec.axes = {protocol_axis({0, 1, 2, 3}),
               axis("events", {1, 5, 10, 20}, {1, 2, 4, 8, 12, 16, 20}),
               axis("interest", {0.2, 0.6, 1.0}, {0.2, 0.4, 0.6, 0.8, 1.0}),
               axis("nodes", {75}, {150}),
               axis("area_m", {3536}, {5000})};
  spec.default_seeds = 2;
  spec.full_seeds = 3;  // the quick grid trades seeds for wall-clock
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    core::ExperimentConfig config = rwp_world_scaled(
        10.0, point.get("interest"),
        static_cast<std::size_t>(point.get("nodes")), point.get("area_m"),
        seed);
    config.protocol = protocol_of(point);
    config.event_count = static_cast<std::uint32_t>(point.get("events"));
    config.event_bytes = 400;
    config.publish_spacing = SimDuration::from_seconds(1.0);
    return config;
  };
  spec.metrics = {std::move(metric)};
  spec.expected_shape = expected_shape;
  return spec;
}

// ---------------------------------------------------------------------------
// Headline + ablations.

ScenarioSpec headline_spec() {
  ScenarioSpec spec;
  spec.name = "headline";
  spec.figure = "Abstract";
  spec.title = "Headline: 1 event, 400 B, 150 nodes, 10 mps, 80% subs";
  spec.description =
      "The abstract's numbers in the paper's RWP setting: reliability, "
      "bandwidth, duplicates and parasites for frugal vs flooding";
  spec.axes = {protocol_axis({protocol_ordinal("frugal"),
                              protocol_ordinal("interests-aware-flooding"),
                              protocol_ordinal("simple-flooding")})};
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    core::ExperimentConfig config = rwp_world(10.0, 10.0, 0.8, seed);
    config.protocol = protocol_of(point);
    return config;
  };
  spec.metrics = {reliability_metric(), bytes_metric(), duplicates_metric(),
                  parasites_metric()};
  spec.post = [](const SweepResult& sweep) {
    const auto row_for = [&sweep](std::string_view protocol)
        -> const PointResult* {
      const double ordinal = protocol_ordinal(protocol);
      for (const PointResult& row : sweep.points) {
        if (row.point.values[0] == ordinal) return &row;
      }
      return nullptr;
    };
    const PointResult* frugal_row = row_for("frugal");
    const PointResult* interest_row = row_for("interests-aware-flooding");
    std::vector<stats::Table> tables;
    if (frugal_row == nullptr || interest_row == nullptr) return tables;
    stats::Table table{
        "Measured factors vs interests-aware flooding (paper: 3-4.5x / "
        "70-100x / 50-90x)",
        {"metric", "factor"}};
    const auto factor = [&](std::size_t m, double floor_value) {
      return interest_row->metrics[m].mean() /
             std::max(frugal_row->metrics[m].mean(), floor_value);
    };
    table.add_row({"bandwidth", stats::format_double(factor(1, 1.0), 1)});
    table.add_row({"duplicates", stats::format_double(factor(2, 0.01), 0)});
    table.add_row({"parasites", stats::format_double(factor(3, 0.01), 0)});
    tables.push_back(std::move(table));
    return tables;
  };
  spec.expected_shape =
      "Paper claims: 0.95 reliability @ 180 s (frugal), 3-4.5x bandwidth "
      "saved, 70-100x fewer duplicates, 50-90x fewer parasites.";
  return spec;
}

struct Ablation {
  const char* label;
  void (*apply)(core::FrugalConfig&);
  double churn_per_min = 0.0;
};

constexpr Ablation kAblations[] = {
    {"full", [](core::FrugalConfig&) {}},
    {"no-backoff",
     [](core::FrugalConfig& config) { config.use_backoff = false; }},
    {"no-id-exchange",
     [](core::FrugalConfig& config) { config.exchange_event_ids = false; }},
    {"fixed-hb",
     [](core::FrugalConfig& config) { config.adaptive_heartbeat = false; }},
    {"tiny-event-table",
     [](core::FrugalConfig& config) { config.event_table_capacity = 2; }},
    {"churn-1/min", [](core::FrugalConfig&) {}, 1.0},
    {"churn-6/min", [](core::FrugalConfig&) {}, 6.0},
    // GC-policy comparison under the same severe memory pressure: does
    // Equation 1 beat naive eviction orders?
    {"gc-eq1-cap4",
     [](core::FrugalConfig& config) { config.event_table_capacity = 4; }},
    {"gc-fifo-cap4",
     [](core::FrugalConfig& config) {
       config.event_table_capacity = 4;
       config.gc_policy = core::GcPolicy::kFifo;
     }},
    {"gc-mostfwd-cap4",
     [](core::FrugalConfig& config) {
       config.event_table_capacity = 4;
       config.gc_policy = core::GcPolicy::kMostForwarded;
     }},
};

ScenarioSpec ablations_spec() {
  constexpr std::size_t count = std::size(kAblations);
  ScenarioSpec spec;
  spec.name = "ablations";
  spec.title = "Ablation study (RWP 10 mps, 80% interest, 5 events)";
  spec.description =
      "Which frugal mechanism buys what: back-off, id exchange, adaptive "
      "heartbeat, event-table GC policies, plus churn injection";
  Axis axis;
  axis.name = "ablation";
  for (std::size_t i = 0; i < count; ++i) {
    axis.values.push_back(static_cast<double>(i));
  }
  axis.format = [](double value) {
    const auto index = static_cast<std::size_t>(value);
    FRUGAL_EXPECT(index < std::size(kAblations));
    return std::string{kAblations[index].label};
  };
  spec.axes = {std::move(axis)};
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    const Ablation& ablation =
        kAblations[static_cast<std::size_t>(point.get("ablation"))];
    core::ExperimentConfig config = rwp_world(10.0, 10.0, 0.8, seed);
    config.event_count = 5;
    config.publish_spacing = SimDuration::from_seconds(1.0);
    config.churn.crashes_per_node_per_minute = ablation.churn_per_min;
    ablation.apply(config.frugal);
    return config;
  };
  spec.metrics = {reliability_metric(), bytes_metric(), copies_metric(),
                  duplicates_metric(), parasites_metric()};
  spec.expected_shape =
      "Reading guide: no-backoff and no-id-exchange should preserve "
      "reliability while inflating duplicates and bandwidth; fixed-hb "
      "matters only when speeds vary; tiny-event-table shows Equation 1 "
      "keeping dissemination alive under severe memory pressure; the churn "
      "rows inject Poisson radio blackouts (5-30 s) per process.";
  return spec;
}

// ---------------------------------------------------------------------------
// Exploratory scenarios beyond the paper's figures.

ScenarioSpec multi_publisher_spec() {
  ScenarioSpec spec;
  spec.name = "multi_publisher";
  spec.title = "Multi-publisher workload (RWP 10 mps, 80% subscribers)";
  spec.description =
      "8 events round-robined across 1-8 distinct publishers: how "
      "publisher diversity changes reliability, bandwidth and latency";
  spec.axes = {axis("publishers", {1, 2, 4, 8})};
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    core::ExperimentConfig config = rwp_world(10.0, 10.0, 0.8, seed);
    config.publisher_count =
        static_cast<std::uint32_t>(point.get("publishers"));
    config.event_count = 8;
    config.publish_spacing = SimDuration::from_seconds(1.0);
    return config;
  };
  spec.metrics = {reliability_metric(), bytes_metric(), duplicates_metric(),
                  latency_metric()};
  spec.expected_shape =
      "Expected shape: spreading the same workload over more publishers "
      "seeds dissemination at more points of the area, so reliability and "
      "latency should improve slightly at similar bandwidth.";
  return spec;
}

ScenarioSpec high_density_spec() {
  ScenarioSpec spec;
  spec.name = "high_density";
  spec.title = "Density scaling (RWP 10 mps, 80% subscribers, 25 km^2)";
  spec.description =
      "Same area, growing population: protocol cost and reliability as the "
      "network densifies well beyond the paper's 150 processes";
  spec.axes = {axis("nodes", {75, 150, 300}, {75, 150, 300, 450})};
  spec.default_seeds = 2;
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    return rwp_world_scaled(10.0, 0.8,
                            static_cast<std::size_t>(point.get("nodes")),
                            5000.0, seed);
  };
  spec.metrics = {reliability_metric(), bytes_metric(),
                  duplicates_metric()};
  spec.expected_shape =
      "Expected shape: reliability saturates toward 1 with density while "
      "per-process bandwidth stays near-flat — the frugal back-off absorbs "
      "the extra neighbors instead of multiplying transmissions.";
  return spec;
}

ScenarioSpec topic_fanout_spec() {
  ScenarioSpec spec;
  spec.name = "topic_fanout";
  spec.title =
      "Topic-tree fan-out (RWP 10 mps, 80% subscribers, hierarchical "
      "workload)";
  spec.description =
      "Hierarchical pub/sub over a synthetic topic tree: reliability and "
      "cost vs hierarchy depth, branching factor, Zipf-skewed leaf "
      "popularity and the broad-vs-narrow subscriber mix";
  spec.axes = {axis("depth", {2, 4, 6}, {1, 2, 3, 4, 5, 6}),
               axis("branching", {3}, {2, 3, 4}),
               axis("zipf_s", {1.0}, {0, 0.5, 1.0, 1.5}),
               axis("broad", {0.2, 0.8}, {0, 0.25, 0.5, 0.75, 1.0})};
  spec.default_seeds = 2;
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    // The frugality figures' density-preserving fast world; --full restores
    // nothing here (the hierarchy axes are the full grid's extra room).
    core::ExperimentConfig config =
        rwp_world_scaled(10.0, 0.8, 75, 3536.0, seed);
    core::TopicHierarchyWorkload workload;
    workload.depth = static_cast<std::uint32_t>(point.get("depth"));
    workload.branching = static_cast<std::uint32_t>(point.get("branching"));
    workload.zipf_s = point.get("zipf_s");
    workload.broad_fraction = point.get("broad");
    workload.subscriptions_per_node = 2;
    config.topic_workload = workload;
    config.event_count = 12;
    config.event_bytes = 400;
    config.publish_spacing = SimDuration::from_seconds(1.0);
    return config;
  };
  spec.metrics = {reliability_metric(),  bytes_metric(),
                  copies_metric(),       duplicates_metric(),
                  parasites_metric(),    latency_metric(),
                  mean_hops_metric(),    redundancy_metric()};
  spec.expected_shape =
      "Expected shape: deeper hierarchies and narrower interests shrink "
      "each event's eligible audience, so per-event reliability holds "
      "roughly steady while bytes and parasites fall (fewer processes "
      "relay); a broad-heavy mix (broad -> 1) approaches the flat-workload "
      "behaviour, and Zipf skew concentrates traffic on the popular "
      "branches.";
  return spec;
}

ScenarioSpec churn_city_spec() {
  ScenarioSpec spec;
  spec.name = "churn_city";
  spec.title = "Churn x subscribers (city section)";
  spec.description =
      "Crash/recovery churn crossed with the subscriber fraction on the "
      "city-section world: what failure-induced silence costs "
      "constrained-path dissemination";
  spec.axes = {axis("churn_per_min", {0, 2, 6}, {0, 1, 2, 4, 6, 10}),
               axis("interest", {0.4, 1.0}, {0.2, 0.4, 0.6, 0.8, 1.0}),
               city_publisher_axis_sampled()};
  spec.default_seeds = 2;
  spec.full_seeds = 3;
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    core::ExperimentConfig config =
        city_config(point, seed, point.get("interest"));
    config.churn.crashes_per_node_per_minute = point.get("churn_per_min");
    return config;
  };
  spec.metrics = {reliability_metric(), bytes_metric(),
                  duplicates_metric()};
  spec.expected_shape =
      "Expected shape: reliability decreases monotonically with the churn "
      "rate at every subscriber fraction — a crashed process misses "
      "encounters and its neighbors advertise into silence — while bytes "
      "fall slightly (down radios send nothing); the constrained city "
      "paths keep even 10 crashes/min from collapsing dissemination "
      "(events outlive several 5-30 s blackouts).";
  return spec;
}

ScenarioSpec adversarial_mobility_spec() {
  ScenarioSpec spec;
  spec.name = "adversarial_mobility";
  spec.title =
      "Adversarial flash crowd (35 processes, 25 km^2, converge -> "
      "disperse)";
  spec.description =
      "All processes converge on one point, dwell 60 s, then disperse: "
      "reliability and cost when the event is published before, during and "
      "after the density spike";
  Axis phase;
  phase.name = "phase";
  phase.values = {0, 1, 2};
  phase.format = [](double value) {
    switch (static_cast<int>(value)) {
      case 0: return std::string{"pre-converge"};
      case 1: return std::string{"converged"};
      default: return std::string{"dispersed"};
    }
  };
  spec.axes = {std::move(phase),
               axis("speed_mps", {5, 20}, {2, 5, 10, 20, 40})};
  spec.default_seeds = 2;
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    core::ExperimentConfig config;
    config.node_count = 35;
    config.interest_fraction = 0.8;
    core::ConvergeSetup setup;
    setup.config.width_m = 5000.0;
    setup.config.height_m = 5000.0;
    setup.config.rally = {2500.0, 2500.0};
    setup.config.rally_radius_m = 15.0;
    setup.config.speed_mps = point.get("speed_mps");
    setup.config.converge_by = SimTime::from_seconds(240.0);
    setup.config.disperse_at = SimTime::from_seconds(300.0);
    config.mobility = setup;
    config.medium.range_m = 442.0;
    config.medium.rate_bps = 1e6;
    // Publication lands squarely in one phase: en route (the 120 s
    // validity expires before the crowd forms), mid-dwell, or once the
    // crowd has genuinely scattered — dispersal takes ~2500 m / speed, so
    // that phase's start scales with the speed axis.
    const double scatter_s = 2500.0 / setup.config.speed_mps;
    const double warmups[] = {100.0, 250.0, 300.0 + scatter_s};
    // --grid can inject any value; 0/1/2 are the only defined phases.
    // Validate on the double (a negative value must not reach the unsigned
    // cast, where it would be undefined).
    const double phase_value = point.get("phase");
    FRUGAL_EXPECT(phase_value == 0.0 || phase_value == 1.0 ||
                  phase_value == 2.0);
    config.warmup = SimDuration::from_seconds(
        warmups[static_cast<std::size_t>(phase_value)]);
    config.event_validity = SimDuration::from_seconds(120.0);
    config.event_count = 3;
    config.event_bytes = 400;
    config.publish_spacing = SimDuration::from_seconds(1.0);
    config.seed = seed;
    return config;
  };
  spec.metrics = {reliability_metric(), duplicates_metric(), bytes_metric(),
                  latency_metric()};
  spec.expected_shape =
      "Expected shape: publishing while converged reaches every subscriber "
      "almost instantly at almost no cost — with the whole crowd inside "
      "one radio range, overhearing suppresses every redundant bundle "
      "(duplicates ~ 0); pre-converge is the expensive phase (funneling "
      "carriers re-encounter constantly and re-bundle: the duplicate "
      "spike); dispersed is the sparse-partition regime — the lowest "
      "reliability of the three phases, events marooned on whoever "
      "carried them out.";
  return spec;
}

ScenarioSpec memory_pressure_spec() {
  ScenarioSpec spec;
  spec.name = "memory_pressure";
  spec.title =
      "Event-table memory pressure (RWP 10 mps, 80% subscribers, 24 "
      "events)";
  spec.description =
      "Event-table capacity x publish rate grids that keep far more valid "
      "events in flight than a process can store: Fig. 3 GC victim "
      "selection (Equation 1) under real load";
  spec.axes = {axis("capacity", {2, 8, 64}, {2, 4, 8, 16, 64, 256}),
               axis("rate_eps", {1, 4}, {0.5, 1, 2, 4, 8})};
  spec.default_seeds = 2;
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    // The frugality figures' density-preserving fast world, with a shorter
    // warm-up: GC pressure needs event-table traffic, not long spatial
    // mixing.
    core::ExperimentConfig config =
        rwp_world_scaled(10.0, 0.8, 75, 3536.0, seed);
    config.warmup = SimDuration::from_seconds(300.0);
    config.frugal.event_table_capacity =
        static_cast<std::size_t>(point.get("capacity"));
    config.event_count = 24;
    config.event_bytes = 100;
    config.publish_spacing =
        SimDuration::from_seconds(1.0 / point.get("rate_eps"));
    return config;
  };
  spec.metrics = {reliability_metric(), gc_evictions_metric(),
                  duplicates_metric(), bytes_metric()};
  spec.expected_shape =
      "Expected shape: capacity 2 forces constant Equation-1 victim "
      "selection (evictions per process >> 0) yet dissemination survives "
      "on fresh-event handoff; evictions drop as capacity grows and are "
      "exactly 0 once the table can hold the whole 24-event workload "
      "(capacity 64+), where reliability recovers to the unbounded-table "
      "level; higher publish rates deepen the pressure by keeping more "
      "events simultaneously valid.";
  return spec;
}

ScenarioSpec energy_lifetime_spec() {
  ScenarioSpec spec;
  spec.name = "energy_lifetime";
  spec.title =
      "Energy lifetime: battery x heartbeat period x protocol (RWP 10 mps, "
      "80% subscribers, 12 events)";
  spec.description =
      "Radio power-state energy accounting with finite batteries: joules "
      "per delivered event, time of the first battery death and survivors, "
      "frugal vs interests-aware flooding under a shared beat period and "
      "optional duty-cycle sleep";
  // The first two protocol values must stay {frugal, interests-aware}:
  // reduced-grid helpers (telemetry tests, CI smoke) keep the leading pair.
  spec.axes = {protocol_axis({protocol_ordinal("frugal"),
                              protocol_ordinal("interests-aware-flooding"),
                              protocol_ordinal("battery-adaptive-frugal"),
                              protocol_ordinal("speed-adaptive-frugal"),
                              protocol_ordinal("gossip")}),
               axis("battery_j", {300, 450, 800},
                    {200, 250, 300, 350, 400, 450, 500, 650, 800}),
               axis("hb_upper_s", {1, 3}, {1, 2, 3, 4, 5}),
               axis("duty", {0}, {0, 0.25, 0.5}),
               // Per-node battery heterogeneity: capacities ramp linearly
               // over node ids from battery_j*(1 - spread/2) to
               // battery_j*(1 + spread/2) — mean preserved. 0 = the
               // homogeneous fleet (scalar capacity).
               axis("battery_spread", {0}, {0, 0.5})};
  spec.default_seeds = 2;
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    // The frugality figures' density-preserving fast world with a shorter
    // warm-up: battery lifetimes are dominated by idle listening
    // (~0.84 J/s), so a 600 s warm-up would spend most grids before the
    // first publication.
    core::ExperimentConfig config =
        rwp_world_scaled(10.0, 0.8, 75, 3536.0, seed);
    config.protocol = protocol_of(point);
    config.warmup = SimDuration::from_seconds(300.0);
    config.event_count = 12;
    config.event_bytes = 400;
    config.publish_spacing = SimDuration::from_seconds(1.0);
    // One beat-period axis drives both protocols: the frugal heartbeat
    // upper bound and the flooding retransmission period.
    const SimDuration beat = SimDuration::from_seconds(point.get("hb_upper_s"));
    config.frugal.hb_upper = beat;
    config.flooding.period = beat;
    energy::EnergyConfig energy;
    energy.battery_capacity_j = point.get("battery_j");
    const double spread = point.get_or("battery_spread", 0.0);
    if (spread > 0) {
      energy.battery_capacity_per_node_j.resize(config.node_count);
      const auto n = static_cast<double>(config.node_count);
      for (std::size_t i = 0; i < config.node_count; ++i) {
        const double t =
            config.node_count > 1
                ? static_cast<double>(i) / (n - 1.0)
                : 0.5;
        energy.battery_capacity_per_node_j[i] =
            energy.battery_capacity_j * (1.0 - spread / 2.0 + spread * t);
      }
    }
    energy.sleep_fraction = point.get("duty");
    energy.duty_period = beat;  // sleep between heartbeat rounds
    config.energy = energy;
    return config;
  };
  spec.metrics = {reliability_metric(),      joules_per_event_metric(),
                  joules_per_node_metric(),  first_death_metric(),
                  survivors_metric(),        mean_hops_metric(),
                  redundancy_metric()};
  spec.expected_shape =
      "Expected shape: flooding's joules per delivered event strictly "
      "exceeds frugal's wherever both reach comparable reliability (equal "
      "idle floor, far more TX/RX airtime), so at tight batteries flooding "
      "dies first — first_death_s grows monotonically with battery_j and is "
      "earlier for flooding at every capacity; slower beats (hb_upper_s up) "
      "spend less but deliver later; duty-cycle sleep (--full) trades a "
      "bounded reliability loss for a visibly longer network lifetime. "
      "battery-adaptive-frugal dozes below 35% charge and outlives static "
      "frugal at the tightest batteries at equal reliability; "
      "speed-adaptive-frugal beacons more when moving fast; gossip sits "
      "between frugal and flooding on joules.";
  return spec;
}

ScenarioSpec metro_scale_spec() {
  ScenarioSpec spec;
  spec.name = "metro_scale";
  spec.title =
      "Metro scale: 10k+ processes on a 6 x 6 km city grid (spatial index)";
  spec.description =
      "The world the medium's uniform-grid index unlocks: a metropolitan "
      "street network two orders of magnitude past the paper's 15-process "
      "city runs, multi-publisher, Zipf-skewed topic hierarchy. Unrunnable "
      "with the O(n^2) brute-force medium, routine with the index.";
  spec.axes = {axis("nodes", {2500, 10000}, {2500, 5000, 10000, 20000}),
               axis("interest", {0.5}, {0.2, 0.5, 0.8})};
  spec.default_seeds = 1;
  spec.full_seeds = 2;
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    return metro_world(static_cast<std::size_t>(point.get("nodes")),
                       point.get("interest"), seed);
  };
  spec.metrics = {reliability_metric(), bytes_metric(), duplicates_metric(),
                  latency_metric()};
  spec.expected_shape =
      "Expected shape: the street grid is sparse per-hop (44 m radio on "
      "150 m blocks), so dissemination rides encounters at intersections "
      "and reliability within the short 60 s validity stays far below the "
      "small-city figures at every size, while per-process bytes stay "
      "near-flat across the nodes axis — the frugal back-off absorbs "
      "density, which is exactly what makes 10k processes affordable.";
  return spec;
}

ScenarioSpec sparse_partition_spec() {
  ScenarioSpec spec;
  spec.name = "sparse_partition";
  spec.title = "Sparse partitioned network (30 processes over 25 km^2)";
  spec.description =
      "A fifth of the paper's density: the network is partitioned at all "
      "times and only mobility carries events between islands";
  spec.axes = {axis("speed_mps", {0, 1, 5, 10, 20})};
  spec.make_config = [](const ParamPoint& point, std::uint64_t seed) {
    const double speed = point.get("speed_mps");
    core::ExperimentConfig config = rwp_world(speed, speed, 0.8, seed);
    config.node_count = 30;
    return config;
  };
  spec.metrics = {rel_probe(60), rel_probe(120), rel_probe(180),
                  latency_metric()};
  spec.expected_shape =
      "Expected shape: at speed 0 events never leave the publisher's "
      "island; reliability climbs with speed as carriers bridge partitions, "
      "at the price of high delivery latency.";
  return spec;
}

}  // namespace

void register_builtin_scenarios() {
  static const bool registered = [] {
    Registry& registry = Registry::instance();
    registry.add(fig11_spec());
    registry.add(fig12_spec());
    registry.add(fig13_spec());
    registry.add(fig14_spec());
    registry.add(fig15_spec());
    registry.add(fig16_spec());
    registry.add(frugality_spec(
        "fig17_bandwidth", "Figure 17",
        "Fig 17 bandwidth per process vs events x subscribers",
        "Bytes sent per process during the 180 s dissemination window, "
        "frugal vs the flooding baselines",
        bytes_metric(),
        "Expected shape (paper): the frugal algorithm uses the least "
        "bandwidth everywhere except when total event bytes < ~1.5 kB and "
        "interest <= 20% (interests-aware flooding wins that corner); "
        "neighbors'-interests flooding is the most expensive (> 1 MB)."));
    registry.add(frugality_spec(
        "fig18_events_sent", "Figure 18",
        "Fig 18 events sent per process vs events x subscribers",
        "Event copies put on the air per process, frugal vs flooding",
        copies_metric(),
        "Expected shape (paper): the frugal algorithm sends 50-100x fewer "
        "event copies than the flooding alternatives (which retransmit "
        "every second for the whole validity period)."));
    registry.add(frugality_spec(
        "fig19_duplicates", "Figure 19",
        "Fig 19 duplicates received per process vs events x subscribers",
        "Duplicate event receptions per process, frugal vs flooding",
        duplicates_metric(),
        "Expected shape (paper): frugal beats interests-aware flooding by "
        "50-80x and the other variants by 80-700x; in the worst case a "
        "frugal subscriber sees an event ~4 times in 180 s."));
    registry.add(frugality_spec(
        "fig20_parasites", "Figure 20",
        "Fig 20 parasite events received per process",
        "Events of unsubscribed topics delivered per process, frugal vs "
        "flooding",
        parasites_metric(),
        "Expected shape (paper): parasites peak around 60% subscribers "
        "(many broadcasts x many uninterested processes) and vanish at "
        "100%; frugal outperforms the shown alternatives by 20-50x and "
        "simple flooding by up to 800x."));
    registry.add(headline_spec());
    registry.add(ablations_spec());
    registry.add(multi_publisher_spec());
    registry.add(high_density_spec());
    registry.add(sparse_partition_spec());
    registry.add(topic_fanout_spec());
    registry.add(churn_city_spec());
    registry.add(adversarial_mobility_spec());
    registry.add(memory_pressure_spec());
    registry.add(energy_lifetime_spec());
    registry.add(metro_scale_spec());
    return true;
  }();
  static_cast<void>(registered);
}

}  // namespace frugal::runner
