#include "runner/sink.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/expect.hpp"

namespace frugal::runner {

namespace {

/// Shortest round-trippable-enough fixed formatting: %.10g is stable across
/// runs (aggregation order is canonical) and locale-independent under the
/// default "C" locale the binaries never change.
std::string number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  return buf;
}

/// CSV/JSON cells must not smuggle in separators; axis formatters and
/// metric names are project-controlled, so a contract check suffices.
const std::string& checked_cell(const std::string& cell) {
  FRUGAL_EXPECT(cell.find_first_of(",\"\n") == std::string::npos);
  return cell;
}

}  // namespace

Format parse_format(const std::string& text) {
  if (text == "table") return Format::kTable;
  if (text == "csv") return Format::kCsv;
  if (text == "jsonl") return Format::kJsonl;
  FRUGAL_EXPECT(false && "format must be table, csv or jsonl");
  return Format::kTable;
}

stats::Table sweep_table(const SweepResult& sweep) {
  std::vector<std::string> columns;
  for (const Axis& axis : sweep.axes) columns.push_back(axis.name);
  for (const MetricSpec& metric : sweep.spec->metrics) {
    columns.push_back(metric.name);
  }
  stats::Table table{sweep.spec->title, columns};
  for (const PointResult& row : sweep.points) {
    std::vector<std::string> cells;
    cells.reserve(columns.size());
    for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
      cells.push_back(sweep.axes[a].cell(row.point.values[a]));
    }
    for (std::size_t m = 0; m < sweep.spec->metrics.size(); ++m) {
      cells.push_back(stats::format_double(row.metrics[m].mean(),
                                           sweep.spec->metrics[m].precision));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

std::string sweep_csv(const SweepResult& sweep) {
  std::string out = "scenario";
  for (const Axis& axis : sweep.axes) {
    out += ',';
    out += checked_cell(axis.name);
  }
  out += ",metric,seeds,mean,ci95,min,max\n";

  for (const PointResult& row : sweep.points) {
    for (std::size_t m = 0; m < sweep.spec->metrics.size(); ++m) {
      const stats::Summary& summary = row.metrics[m];
      out += checked_cell(sweep.spec->name);
      for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
        out += ',';
        out += checked_cell(sweep.axes[a].cell(row.point.values[a]));
      }
      out += ',';
      out += checked_cell(sweep.spec->metrics[m].name);
      out += ',';
      out += std::to_string(summary.count());
      out += ',';
      out += number(summary.mean());
      out += ',';
      out += number(summary.ci95_half_width());
      out += ',';
      out += number(summary.min());
      out += ',';
      out += number(summary.max());
      out += '\n';
    }
  }
  return out;
}

std::string sweep_jsonl(const SweepResult& sweep) {
  std::string out;
  for (const PointResult& row : sweep.points) {
    out += "{\"scenario\":\"";
    out += checked_cell(sweep.spec->name);
    out += "\",\"axes\":{";
    for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
      if (a > 0) out += ',';
      out += '"';
      out += checked_cell(sweep.axes[a].name);
      out += "\":";
      if (sweep.axes[a].format) {
        out += '"';
        out += checked_cell(sweep.axes[a].cell(row.point.values[a]));
        out += '"';
      } else {
        out += number(row.point.values[a]);
      }
    }
    out += "},\"seeds\":";
    out += std::to_string(sweep.seeds);
    out += ",\"metrics\":{";
    for (std::size_t m = 0; m < sweep.spec->metrics.size(); ++m) {
      if (m > 0) out += ',';
      const stats::Summary& summary = row.metrics[m];
      out += '"';
      out += checked_cell(sweep.spec->metrics[m].name);
      out += "\":{\"mean\":";
      out += number(summary.mean());
      out += ",\"ci95\":";
      out += number(summary.ci95_half_width());
      out += ",\"min\":";
      out += number(summary.min());
      out += ",\"max\":";
      out += number(summary.max());
      out += ",\"n\":";
      out += std::to_string(summary.count());
      out += '}';
    }
    out += "}}\n";
  }
  return out;
}

std::string profile_json(const sim::Profiler& profile) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, section] : profile.sections()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += checked_cell(name);
    out += "\":{\"wall_ms\":";
    out += number(static_cast<double>(section.wall_ns) / 1e6);
    out += ",\"count\":";
    out += std::to_string(section.count);
    out += '}';
  }
  out += '}';
  return out;
}

void emit(const SweepResult& sweep, Format format,
          const std::string& csv_dir) {
  switch (format) {
    case Format::kTable: {
      if (!sweep.spec->suppress_point_table) sweep_table(sweep).print();
      if (sweep.spec->post) {
        for (const stats::Table& table : sweep.spec->post(sweep)) {
          table.print();
        }
      }
      if (!sweep.spec->expected_shape.empty()) {
        std::printf("\n%s\n", sweep.spec->expected_shape.c_str());
      }
      // Execution provenance only — wall-clock, worker and shard counts
      // never reach the canonical csv/jsonl renderings (the sink stability
      // test pins that), so merged results stay byte-comparable.
      if (sweep.merged_from > 0) {
        std::printf("# %zu runs x %d seed(s), merged from %d shard(s)\n",
                    sweep.job_count / static_cast<std::size_t>(sweep.seeds),
                    sweep.seeds, sweep.merged_from);
      } else {
        std::printf("# %zu runs x %d seed(s) on %d worker(s) in %.1fs\n",
                    sweep.job_count / static_cast<std::size_t>(sweep.seeds),
                    sweep.seeds, sweep.jobs, sweep.wall_seconds);
      }
      // Self-profile provenance (--profile): exclusive per-subsystem wall
      // time summed over every job, heaviest first. Observability only —
      // same rule as the timing line above.
      if (!sweep.profile.sections().empty()) {
        auto sections = sweep.profile.sections();
        std::sort(sections.begin(), sections.end(),
                  [](const auto& a, const auto& b) {
                    return a.second.wall_ns > b.second.wall_ns;
                  });
        std::printf("# profile (exclusive wall time across %zu run(s)):\n",
                    sweep.job_count);
        for (const auto& [name, section] : sections) {
          std::printf("#   %-24s %10.3f ms  %12lld calls\n", name.c_str(),
                      static_cast<double>(section.wall_ns) / 1e6,
                      static_cast<long long>(section.count));
        }
      }
      break;
    }
    case Format::kCsv:
      std::fputs(sweep_csv(sweep).c_str(), stdout);
      break;
    case Format::kJsonl:
      std::fputs(sweep_jsonl(sweep).c_str(), stdout);
      break;
  }

  if (!csv_dir.empty()) {
    const std::string path = csv_dir + "/" + sweep.spec->name + ".csv";
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    if (out) {
      out << sweep_csv(sweep);
      if (format == Format::kTable) {
        std::printf("# csv written to %s\n", path.c_str());
      }
    } else {
      std::fprintf(stderr, "# failed to write csv under %s\n",
                   csv_dir.c_str());
    }
  }
}

}  // namespace frugal::runner
