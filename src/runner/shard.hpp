// Sharded sweep execution: split one sweep's flattened (grid point x seed)
// job range across machines and merge the partial results back into the
// exact SweepResult a single box would have produced.
//
// A shard executes jobs [J*i/N, J*(i+1)/N) of the canonical job order with
// unchanged per-job seeds and emits a self-describing partial artifact:
// one JSONL header (scenario, effective axes, seeds, seed base, shard i/N,
// job index range) followed by one line of raw metric values per job.
// Values are printed with enough digits to round-trip doubles exactly, and
// merge_shards replays the identical serial aggregation over the
// reassembled job order — so the merged CSV/JSONL/table renderings are
// byte-identical to a single-box run at any jobs count (shard_test proves
// it with cmp-level equality).
//
// The artifact is an interchange format between builds of this project:
// both ends are generated, so the parser is strict — any deviation from the
// serialized layout, an incomplete/overlapping shard set, or artifacts from
// mismatched grids or seed bases abort with a contract violation.
#pragma once

#include <string>
#include <vector>

#include "runner/sweep.hpp"

namespace frugal::runner {

/// A self-describing partial sweep: the header identifying the exact sweep
/// this shard belongs to, plus the raw per-job metric values of its slice.
struct ShardArtifact {
  std::string scenario;
  ShardSpec shard;
  JobRange range;              ///< this shard's slice of the job order
  std::size_t job_count = 0;   ///< total jobs of the whole sweep
  int seeds = 0;
  std::uint64_t seed_base = 1;
  /// Resolved effective axes (name + values only; rendering metadata comes
  /// from the spec at merge time).
  std::vector<Axis> axes;
  /// Per-axis value labels for axes with a formatter (e.g. protocol names).
  /// Labels are the source of truth at merge time: they are resolved back
  /// to values through the spec's axis parser, so an artifact naming a
  /// protocol nobody registered aborts instead of running the wrong one.
  /// Empty inner vectors for plain numeric axes.
  std::vector<std::vector<std::string>> axis_labels;
  std::vector<std::string> metrics;  ///< spec metric names, for validation
  /// values[i] holds the metric values of job range.begin + i.
  std::vector<std::vector<double>> values;
};

/// Executes options.shard's slice of the sweep on the worker pool. Per-job
/// seeds are a function of the global job index, so the slice computes
/// exactly what a single-box run computes for those jobs.
[[nodiscard]] ShardArtifact run_sweep_shard(const ScenarioSpec& spec,
                                            const SweepOptions& options);

/// JSONL rendering: header object first, then {"job":i,"values":[...]} per
/// job. Doubles use %.17g (exact round-trip).
[[nodiscard]] std::string serialize_shard(const ShardArtifact& artifact);

/// Strict inverse of serialize_shard; aborts on malformed input.
[[nodiscard]] ShardArtifact parse_shard(const std::string& text);

/// Recombines a complete shard set into the SweepResult a single-box run of
/// the same sweep produces (artifact order does not matter). Aborts when the
/// set is incomplete, has duplicate shards, or mixes artifacts from
/// different sweeps (scenario, axes, seeds, seed base, or job count
/// mismatch) or a spec whose metrics changed. The result carries jobs = 0
/// and merged_from = shard count; its csv/jsonl/table renderings are
/// byte-identical to the single-box run's.
[[nodiscard]] SweepResult merge_shards(const ScenarioSpec& spec,
                                       std::vector<ShardArtifact> artifacts);

}  // namespace frugal::runner
