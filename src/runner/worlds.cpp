#include "runner/worlds.hpp"

namespace frugal::runner {

core::ExperimentConfig rwp_world(double speed_min_mps, double speed_max_mps,
                                 double interest, std::uint64_t seed) {
  core::ExperimentConfig config;
  config.node_count = 150;
  config.interest_fraction = interest;
  if (speed_max_mps <= 0.0) {
    config.mobility = core::StaticSetup{5000.0, 5000.0};
  } else {
    core::RandomWaypointSetup rwp;
    rwp.config.width_m = 5000.0;
    rwp.config.height_m = 5000.0;
    rwp.config.speed_min_mps = speed_min_mps;
    rwp.config.speed_max_mps = speed_max_mps;
    rwp.config.pause = SimDuration::from_seconds(1.0);  // paper §5.1
    rwp.config.per_node_constant_speed = speed_min_mps != speed_max_mps;
    config.mobility = rwp;
  }
  config.medium.range_m = 442.0;  // 1 Mbps sensitivity -93 dB (two-ray)
  config.medium.rate_bps = 1e6;
  config.frugal.hb_upper = SimDuration::from_seconds(1.0);
  config.warmup = SimDuration::from_seconds(600.0);
  config.event_validity = SimDuration::from_seconds(180.0);
  config.seed = seed;
  return config;
}

core::ExperimentConfig city_world(double interest, std::uint64_t seed) {
  core::ExperimentConfig config;
  config.node_count = 15;
  config.interest_fraction = interest;
  core::CitySetup city;  // defaults already match the paper's campus
  config.mobility = city;
  config.medium.range_m = 44.0;  // city reception sensitivity -65 dB
  config.medium.rate_bps = 1e6;
  config.frugal.hb_upper = SimDuration::from_seconds(1.0);
  // No explicit warm-up in the paper's city runs; a short one lets the
  // processes leave their starting intersections.
  config.warmup = SimDuration::from_seconds(30.0);
  config.event_validity = SimDuration::from_seconds(150.0);
  config.seed = seed;
  return config;
}

core::ExperimentConfig rwp_world_scaled(double speed_mps, double interest,
                                        std::size_t node_count,
                                        double area_side_m,
                                        std::uint64_t seed) {
  core::ExperimentConfig config = rwp_world(speed_mps, speed_mps, interest,
                                            seed);
  config.node_count = node_count;
  if (auto* rwp = std::get_if<core::RandomWaypointSetup>(&config.mobility)) {
    rwp->config.width_m = area_side_m;
    rwp->config.height_m = area_side_m;
  } else if (auto* fixed = std::get_if<core::StaticSetup>(&config.mobility)) {
    fixed->width_m = area_side_m;
    fixed->height_m = area_side_m;
  }
  return config;
}

core::ExperimentConfig metro_world(std::size_t node_count, double interest,
                                   std::uint64_t seed) {
  core::ExperimentConfig config;
  config.node_count = node_count;
  config.interest_fraction = interest;
  core::CitySetup city;
  city.grid.width_m = 6000.0;
  city.grid.height_m = 6000.0;
  city.grid.columns = 40;
  city.grid.rows = 40;
  config.mobility = city;
  config.medium.range_m = 44.0;  // city reception sensitivity -65 dB
  config.medium.rate_bps = 1e6;
  config.frugal.hb_upper = SimDuration::from_seconds(1.0);
  config.warmup = SimDuration::from_seconds(30.0);
  config.event_validity = SimDuration::from_seconds(60.0);
  config.event_count = 8;
  config.event_bytes = 400;
  config.publish_spacing = SimDuration::from_seconds(1.0);
  config.publisher_count = 8;
  core::TopicHierarchyWorkload workload;
  workload.depth = 3;
  workload.branching = 4;
  workload.zipf_s = 1.0;
  workload.broad_fraction = 0.3;
  workload.subscriptions_per_node = 2;
  config.topic_workload = workload;
  config.seed = seed;
  return config;
}

}  // namespace frugal::runner
