#include "runner/scenario.hpp"

#include <cstdio>

#include "util/expect.hpp"

namespace frugal::runner {

std::string Axis::cell(double value) const {
  if (format) return format(value);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", value);
  return buf;
}

double ParamPoint::get(std::string_view axis_name) const {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == axis_name) return values[i];
  }
  FRUGAL_ASSERT(false && "ParamPoint::get: unknown axis");
  return 0.0;
}

double ParamPoint::get_or(std::string_view axis_name, double fallback) const {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == axis_name) return values[i];
  }
  return fallback;
}

std::vector<ParamPoint> expand_grid(const std::vector<Axis>& axes,
                                    bool full) {
  std::size_t count = 1;
  for (const Axis& axis : axes) {
    FRUGAL_EXPECT(!axis.values_for(full).empty());
    count *= axis.values_for(full).size();
  }

  std::vector<std::string> names;
  names.reserve(axes.size());
  for (const Axis& axis : axes) names.push_back(axis.name);

  std::vector<ParamPoint> points;
  points.reserve(count);
  for (std::size_t flat = 0; flat < count; ++flat) {
    ParamPoint point;
    point.names = names;
    point.values.resize(axes.size());
    // Mixed-radix decomposition, last axis fastest.
    std::size_t rest = flat;
    for (std::size_t a = axes.size(); a-- > 0;) {
      const auto& values = axes[a].values_for(full);
      point.values[a] = values[rest % values.size()];
      rest /= values.size();
    }
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<Axis> apply_overrides(std::vector<Axis> axes,
                                  const std::vector<Axis>& overrides) {
  for (const Axis& override_axis : overrides) {
    bool found = false;
    for (Axis& axis : axes) {
      if (axis.name != override_axis.name) continue;
      FRUGAL_EXPECT(!override_axis.values.empty());
      axis.values = override_axis.values;
      axis.full_values.clear();  // an explicit grid wins in both modes
      found = true;
      break;
    }
    FRUGAL_EXPECT(found && "--grid names an axis the scenario does not have");
  }
  return axes;
}

}  // namespace frugal::runner
