// The paper's §5.1 evaluation worlds, as reusable config factories.
//
// Formerly duplicated between bench/common.hpp and the shape tests; this is
// the single source of truth the scenario registry, the benches and the
// tests all build on.
#pragma once

#include <cstdint>

#include "core/experiment.hpp"

namespace frugal::runner {

/// The paper's random-waypoint world: 150 processes over 25 km^2, 802.11b
/// basic-rate radio (442 m two-ray range), heartbeat upper bound 1 s, 600 s
/// of warm-up before the publication (§5.1). speed_max <= 0 selects static
/// placement over the same area (the speed-0 points of Fig. 11).
[[nodiscard]] core::ExperimentConfig rwp_world(double speed_min_mps,
                                               double speed_max_mps,
                                               double interest,
                                               std::uint64_t seed);

/// The paper's city-section world: 15 processes on a 1200 x 900 m campus
/// street grid, 44 m radio range, speed limits 8-13 mps (§5.1).
[[nodiscard]] core::ExperimentConfig city_world(double interest,
                                                std::uint64_t seed);

/// rwp_world rescaled to `node_count` processes over a `area_side_m`-sided
/// square (the frugality figures' density-preserving fast mode).
[[nodiscard]] core::ExperimentConfig rwp_world_scaled(double speed_mps,
                                                      double interest,
                                                      std::size_t node_count,
                                                      double area_side_m,
                                                      std::uint64_t seed);

/// The metro-scale world the spatial index unlocks: `node_count` (10k+)
/// processes on a 6 x 6 km, 40 x 40-street city grid with the paper's city
/// radio (44 m), multiple round-robin publishers and a Zipf-skewed topic
/// hierarchy. A short validity window keeps the wall-clock budget sane; the
/// O(n^2) brute-force medium path makes this config unrunnable, which is
/// the point.
[[nodiscard]] core::ExperimentConfig metro_world(std::size_t node_count,
                                                 double interest,
                                                 std::uint64_t seed);

}  // namespace frugal::runner
