// Unified metrics sink: one renderer for every sweep, replacing the
// per-bench CSV plumbing.
//
// Three formats over the same aggregated SweepResult:
//   - table: human-readable wide table (one row per grid point, one column
//     per metric mean) plus the spec's expected-shape note and any derived
//     post tables — what the bench binaries print.
//   - csv:   canonical long format, one row per (point, metric) with
//     seeds/mean/ci95/min/max — the machine-ingestible record.
//   - jsonl: one JSON object per grid point, same numbers.
//
// Every format is rendered from the canonically-ordered SweepResult with
// fixed printf formatting, so output is byte-identical across worker
// counts. Wall-clock, worker-count and shard-count info never appears in
// csv/jsonl — merged shard-set results render byte-identically to
// single-box runs.
#pragma once

#include <string>

#include "runner/sweep.hpp"
#include "stats/table.hpp"

namespace frugal::runner {

enum class Format { kTable, kCsv, kJsonl };

/// Parses "table" / "csv" / "jsonl"; aborts on anything else.
[[nodiscard]] Format parse_format(const std::string& text);

/// The wide human-readable table (means only; spreads live in the CSV).
[[nodiscard]] stats::Table sweep_table(const SweepResult& sweep);

/// Canonical long CSV: header
/// `scenario,<axes...>,metric,seeds,mean,ci95,min,max`.
[[nodiscard]] std::string sweep_csv(const SweepResult& sweep);

/// One JSON object per grid point:
/// {"scenario":...,"axes":{...},"seeds":N,"metrics":{name:{mean,...}}}.
[[nodiscard]] std::string sweep_jsonl(const SweepResult& sweep);

/// The merged self-profile as a JSON object:
/// {"section name":{"wall_ms":...,"count":...},...} in section order.
/// "{}" when the sweep ran unprofiled. Feeds the CLI's run manifest.
[[nodiscard]] std::string profile_json(const sim::Profiler& profile);

/// Renders to stdout in `format`. Table mode also prints the expected-shape
/// note, the post tables and a timing line. When `csv_dir` is non-empty the
/// long CSV is additionally written to `<csv_dir>/<scenario>.csv`.
void emit(const SweepResult& sweep, Format format,
          const std::string& csv_dir = {});

}  // namespace frugal::runner
