#include "runner/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "util/expect.hpp"

namespace frugal::runner {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(ScenarioSpec spec) {
  FRUGAL_EXPECT(!spec.name.empty());
  FRUGAL_EXPECT(spec.make_config != nullptr);
  FRUGAL_EXPECT(!spec.metrics.empty());
  FRUGAL_EXPECT(find(spec.name) == nullptr);
  std::unordered_set<std::string> axis_names;
  for (const Axis& axis : spec.axes) {
    FRUGAL_EXPECT(!axis.name.empty());
    FRUGAL_EXPECT(!axis.values.empty());
    FRUGAL_EXPECT(axis_names.insert(axis.name).second);
  }
  specs_.push_back(std::move(spec));
}

const ScenarioSpec* Registry::find(std::string_view name) const {
  for (const ScenarioSpec& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<const ScenarioSpec*> Registry::all() const {
  std::vector<const ScenarioSpec*> specs;
  specs.reserve(specs_.size());
  for (const ScenarioSpec& spec : specs_) specs.push_back(&spec);
  std::sort(specs.begin(), specs.end(),
            [](const ScenarioSpec* a, const ScenarioSpec* b) {
              return a->name < b->name;
            });
  return specs;
}

const ScenarioSpec* find_scenario(std::string_view name) {
  register_builtin_scenarios();
  return Registry::instance().find(name);
}

std::vector<const ScenarioSpec*> all_scenarios() {
  register_builtin_scenarios();
  return Registry::instance().all();
}

namespace {

/// Minimal JSON string escaping for project-controlled prose (titles and
/// descriptions): quotes, backslashes and control characters.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

void append_value_array(std::string& out, const std::vector<double>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += json_number(values[i]);
  }
  out += ']';
}

std::string value_set(const Axis& axis, const std::vector<double>& values) {
  std::string out = "{";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += axis.cell(values[i]);
  }
  out += '}';
  return out;
}
}  // namespace

std::string describe(const ScenarioSpec& spec) {
  std::string out = spec.name;
  if (out.size() < 24) out.append(24 - out.size(), ' ');
  out += ' ';
  std::string figure = spec.figure.empty() ? "-" : spec.figure;
  if (figure.size() < 10) figure.append(10 - figure.size(), ' ');
  out += figure;
  out += ' ';
  out += spec.description;
  out += "\n  axes: ";
  if (spec.axes.empty()) out += "none";
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    const Axis& axis = spec.axes[a];
    if (a > 0) out += "; ";
    out += axis.name;
    out += " = ";
    out += value_set(axis, axis.values);
    if (!axis.full_values.empty()) {
      out += " (full: ";
      out += value_set(axis, axis.full_values);
      out += ')';
    }
    if (axis.aggregate) out += " (aggregate)";
  }
  out += "\n  metrics: ";
  for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
    if (m > 0) out += ", ";
    out += spec.metrics[m].name;
  }
  out += "; seeds: ";
  out += std::to_string(spec.default_seeds);
  if (spec.full_seeds > 0 && spec.full_seeds != spec.default_seeds) {
    out += " (full: ";
    out += std::to_string(spec.full_seeds);
    out += ')';
  }
  out += '\n';
  return out;
}

std::string describe_json(const ScenarioSpec& spec) {
  std::string out = "{\"name\":\"";
  out += json_escape(spec.name);
  out += "\",\"figure\":\"";
  out += json_escape(spec.figure);
  out += "\",\"title\":\"";
  out += json_escape(spec.title);
  out += "\",\"description\":\"";
  out += json_escape(spec.description);
  out += "\",\"default_seeds\":";
  out += std::to_string(spec.default_seeds);
  out += ",\"full_seeds\":";
  out += std::to_string(spec.full_seeds);
  out += ",\"axes\":[";
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    const Axis& axis = spec.axes[a];
    if (a > 0) out += ',';
    out += "{\"name\":\"";
    out += json_escape(axis.name);
    out += "\",\"aggregate\":";
    out += axis.aggregate ? "true" : "false";
    out += ",\"values\":";
    append_value_array(out, axis.values);
    out += ",\"full_values\":";
    append_value_array(out, axis.full_values);
    if (axis.format) {
      out += ",\"labels\":[";
      for (std::size_t v = 0; v < axis.values.size(); ++v) {
        if (v > 0) out += ',';
        out += '"';
        out += json_escape(axis.cell(axis.values[v]));
        out += '"';
      }
      out += ']';
    }
    out += '}';
  }
  out += "],\"metrics\":[";
  for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
    const MetricSpec& metric = spec.metrics[m];
    if (m > 0) out += ',';
    out += "{\"name\":\"";
    out += json_escape(metric.name);
    out += "\",\"precision\":";
    out += std::to_string(metric.precision);
    if (metric.probe_validity_s.has_value()) {
      out += ",\"probe_validity_s\":";
      out += json_number(*metric.probe_validity_s);
    }
    if (metric.needs_dissem) out += ",\"needs_dissem\":true";
    out += '}';
  }
  out += "]}";
  return out;
}

std::string scenarios_json() {
  const std::vector<const ScenarioSpec*> specs = all_scenarios();
  std::string out = "[";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (i > 0) out += ',';
    out += '\n';
    out += describe_json(*specs[i]);
  }
  out += "\n]\n";
  return out;
}

}  // namespace frugal::runner
