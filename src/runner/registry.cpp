#include "runner/registry.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/expect.hpp"

namespace frugal::runner {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(ScenarioSpec spec) {
  FRUGAL_EXPECT(!spec.name.empty());
  FRUGAL_EXPECT(spec.make_config != nullptr);
  FRUGAL_EXPECT(!spec.metrics.empty());
  FRUGAL_EXPECT(find(spec.name) == nullptr);
  std::unordered_set<std::string> axis_names;
  for (const Axis& axis : spec.axes) {
    FRUGAL_EXPECT(!axis.name.empty());
    FRUGAL_EXPECT(!axis.values.empty());
    FRUGAL_EXPECT(axis_names.insert(axis.name).second);
  }
  specs_.push_back(std::move(spec));
}

const ScenarioSpec* Registry::find(std::string_view name) const {
  for (const ScenarioSpec& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<const ScenarioSpec*> Registry::all() const {
  std::vector<const ScenarioSpec*> specs;
  specs.reserve(specs_.size());
  for (const ScenarioSpec& spec : specs_) specs.push_back(&spec);
  std::sort(specs.begin(), specs.end(),
            [](const ScenarioSpec* a, const ScenarioSpec* b) {
              return a->name < b->name;
            });
  return specs;
}

const ScenarioSpec* find_scenario(std::string_view name) {
  register_builtin_scenarios();
  return Registry::instance().find(name);
}

std::vector<const ScenarioSpec*> all_scenarios() {
  register_builtin_scenarios();
  return Registry::instance().all();
}

}  // namespace frugal::runner
