#include "runner/bench_main.hpp"

#include <cstdio>

#include "runner/pool.hpp"
#include "runner/registry.hpp"
#include "runner/sink.hpp"
#include "runner/sweep.hpp"
#include "util/env.hpp"

namespace frugal::runner {

int figure_bench_main(std::string_view scenario_name) {
  const ScenarioSpec* spec = find_scenario(scenario_name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown scenario \"%.*s\"\n",
                 static_cast<int>(scenario_name.size()),
                 scenario_name.data());
    return 2;
  }

  SweepOptions options;
  options.full = env_bool("FRUGAL_FULL", false);

  std::printf("# %s — %s\n",
              spec->figure.empty() ? spec->name.c_str()
                                   : spec->figure.c_str(),
              spec->description.c_str());
  const int default_seeds = options.full && spec->full_seeds > 0
                                ? spec->full_seeds
                                : spec->default_seeds;
  std::printf(
      "# seeds per point: %lld%s (FRUGAL_SEEDS to change), %d worker(s) "
      "(FRUGAL_JOBS)\n",
      static_cast<long long>(env_int("FRUGAL_SEEDS", default_seeds)),
      options.full ? ", full paper grid" : "", resolve_jobs(0));

  const SweepResult sweep = run_sweep(*spec, options);
  emit(sweep, Format::kTable, env_string("FRUGAL_CSV_DIR").value_or(""));
  return 0;
}

}  // namespace frugal::runner
