#include "runner/bench_main.hpp"

#include <cstdio>

#include "runner/pool.hpp"
#include "runner/registry.hpp"
#include "runner/shard.hpp"
#include "runner/sink.hpp"
#include "runner/sweep.hpp"
#include "util/env.hpp"

namespace frugal::runner {

int figure_bench_main(std::string_view scenario_name) {
  const ScenarioSpec* spec = find_scenario(scenario_name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown scenario \"%.*s\"\n",
                 static_cast<int>(scenario_name.size()),
                 scenario_name.data());
    return 2;
  }

  SweepOptions options;
  options.full = env_bool("FRUGAL_FULL", false);

  // FRUGAL_SHARD=i/N: this box runs one slice of the job grid and prints
  // the partial artifact (stdout is the interchange file — no table).
  if (const auto shard_text = env_string("FRUGAL_SHARD")) {
    const std::optional<ShardSpec> shard = try_parse_shard_spec(*shard_text);
    if (!shard.has_value()) {
      std::fprintf(stderr,
                   "bad FRUGAL_SHARD \"%s\" (want i/N with 0 <= i < N)\n",
                   shard_text->c_str());
      return 2;
    }
    options.shard = *shard;
    std::fputs(serialize_shard(run_sweep_shard(*spec, options)).c_str(),
               stdout);
    return 0;
  }

  std::printf("# %s — %s\n",
              spec->figure.empty() ? spec->name.c_str()
                                   : spec->figure.c_str(),
              spec->description.c_str());
  const int default_seeds = options.full && spec->full_seeds > 0
                                ? spec->full_seeds
                                : spec->default_seeds;
  std::printf(
      "# seeds per point: %lld%s (FRUGAL_SEEDS to change), %d worker(s) "
      "(FRUGAL_JOBS)\n",
      static_cast<long long>(env_int("FRUGAL_SEEDS", default_seeds)),
      options.full ? ", full paper grid" : "", resolve_jobs(0));

  const SweepResult sweep = run_sweep(*spec, options);
  emit(sweep, Format::kTable, env_string("FRUGAL_CSV_DIR").value_or(""));
  return 0;
}

}  // namespace frugal::runner
