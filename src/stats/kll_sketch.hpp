// KLL streaming quantile sketch (Karnin, Lang & Liberty, FOCS 2016).
//
// Bounded-memory rank estimation over a stream: a ladder of buffers whose
// capacities shrink geometrically with height. A full buffer at height h is
// sorted and "compacted" — a random half of its items (even or odd ranks,
// one coin flip per compaction) is promoted to height h+1 with doubled
// weight, the rest discarded. Memory is O(k / (1 - c)) items regardless of
// stream length; the expected rank error is O(1/k) (the kll_sketch_test
// property suite pins it at <= 1% of the stream for the default k on 1e5
// samples).
//
// The coin flips come from an internal xorshift64 stream seeded at
// construction, so a sketch fed the same values in the same order reports
// identical quantiles on every run — required for deterministic time-series
// artifacts. Canonical RunResult aggregates never flow through a sketch
// (they use exact folds); sketches serve the windowed latency-quantile
// telemetry series only.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/expect.hpp"

namespace frugal::stats {

class KllSketch {
 public:
  explicit KllSketch(std::size_t k = 256,
                     std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
      : k_{k}, rng_state_{seed | 1} {
    FRUGAL_EXPECT(k >= 8);
    levels_.emplace_back();
    levels_.front().reserve(capacity_at(0));
  }

  void insert(double value) {
    levels_.front().push_back(value);
    ++count_;
    if (levels_.front().size() >= capacity_at(0)) compact_from(0);
  }

  /// Values inserted since construction/clear().
  [[nodiscard]] std::size_t count() const { return count_; }

  /// True when no value has been inserted.
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Estimated q-quantile (q in [0, 1]) of everything inserted so far.
  /// Exact while the stream still fits in the base buffer (no compaction
  /// has happened); approximate with rank error O(1/k) afterwards.
  [[nodiscard]] double quantile(double q) const {
    FRUGAL_EXPECT(count_ > 0);
    FRUGAL_EXPECT(q >= 0.0 && q <= 1.0);
    std::vector<Weighted> items;
    items.reserve(stored_items());
    for (std::size_t h = 0; h < levels_.size(); ++h) {
      const std::uint64_t weight = std::uint64_t{1} << h;
      for (const double v : levels_[h]) items.push_back({v, weight});
    }
    std::sort(items.begin(), items.end(),
              [](const Weighted& a, const Weighted& b) {
                return a.value < b.value;
              });
    std::uint64_t total = 0;
    for (const Weighted& item : items) total += item.weight;
    const double target = q * static_cast<double>(total);
    std::uint64_t cumulative = 0;
    for (const Weighted& item : items) {
      cumulative += item.weight;
      if (static_cast<double>(cumulative) >= target) return item.value;
    }
    return items.back().value;
  }

  /// Items currently held across all levels (the memory bound).
  [[nodiscard]] std::size_t stored_items() const {
    std::size_t n = 0;
    for (const auto& level : levels_) n += level.size();
    return n;
  }

  void clear() {
    levels_.clear();
    levels_.emplace_back();
    levels_.front().reserve(capacity_at(0));
    count_ = 0;
  }

 private:
  struct Weighted {
    double value;
    std::uint64_t weight;
  };

  /// The topmost (heaviest-weight) level gets the full k; capacity decays
  /// by 2/3 per level downwards with a floor of 8, as in the paper — the
  /// heavier an item's weight, the more accurately its level must be kept.
  /// Capacities are relative to the current height, so adding a level
  /// implicitly tightens everything below it.
  [[nodiscard]] std::size_t capacity_at(std::size_t height) const {
    double cap = static_cast<double>(k_);
    for (std::size_t h = levels_.size() - 1; h > height; --h) cap *= 2.0 / 3.0;
    const auto floored = static_cast<std::size_t>(cap);
    return floored < 8 ? std::size_t{8} : floored;
  }

  bool coin_flip() {
    // xorshift64: deterministic, independent of every simulator RNG stream.
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    return (rng_state_ & 1) != 0;
  }

  void compact_from(std::size_t height) {
    for (std::size_t h = height; h < levels_.size(); ++h) {
      if (levels_[h].size() < capacity_at(h)) break;
      // Grow first: emplace_back may reallocate and would invalidate any
      // reference taken into levels_ beforehand.
      if (h + 1 == levels_.size()) levels_.emplace_back();
      auto& level = levels_[h];
      auto& above = levels_[h + 1];
      std::sort(level.begin(), level.end());
      const std::size_t offset = coin_flip() ? 1 : 0;
      for (std::size_t i = offset; i < level.size(); i += 2) {
        above.push_back(level[i]);
      }
      level.clear();
    }
  }

  std::size_t k_;
  std::uint64_t rng_state_;
  std::size_t count_ = 0;
  /// levels_[h] holds items of weight 2^h, unsorted between compactions.
  std::vector<std::vector<double>> levels_;
};

}  // namespace frugal::stats
