#include "stats/summary.hpp"

#include <algorithm>

namespace frugal::stats {

Summary& Summary::operator+=(const Summary& other) {
  if (other.count_ == 0) return *this;
  if (count_ == 0) {
    *this = other;
    return *this;
  }
  // Chan et al. parallel-merge of the two Welford states.
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  return *this;
}

}  // namespace frugal::stats
