#include "stats/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "util/env.hpp"
#include "util/expect.hpp"

namespace frugal::stats {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_{std::move(title)}, columns_{std::move(columns)} {
  FRUGAL_EXPECT(!columns_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  FRUGAL_EXPECT(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out = "\n== " + title_ + " ==\n";
  const auto append_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      out.append(widths[c] - cells[c].size() + 2, ' ');
    }
    out += '\n';
  };
  append_row(columns_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::optional<std::string> Table::write_csv(const std::string& dir) const {
  std::string slug;
  for (char c : title_) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      slug.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  const std::string path = dir + "/" + slug + ".csv";

  std::ofstream out{path};
  if (!out) return std::nullopt;
  const auto write_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  write_row(columns_);
  for (const auto& row : rows_) write_row(row);
  return path;
}

void Table::emit() const {
  print();
  if (const auto dir = env_string("FRUGAL_CSV_DIR")) {
    if (const auto path = write_csv(*dir)) {
      std::printf("(csv written to %s)\n", path->c_str());
    } else {
      std::printf("(failed to write csv under %s)\n", dir->c_str());
    }
  }
}

}  // namespace frugal::stats
