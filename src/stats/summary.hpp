// Statistical accumulators for experiment results.
#pragma once

#include <cmath>
#include <cstddef>

#include "util/expect.hpp"

namespace frugal::stats {

/// Streaming mean/variance/min/max (Welford's algorithm).
class Summary {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_ || count_ == 1) min_ = x;
    if (x > max_ || count_ == 1) max_ = x;
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double total() const {
    return mean_ * static_cast<double>(count_);
  }

  /// Half-width of the ~95% normal confidence interval of the mean.
  [[nodiscard]] double ci95_half_width() const {
    if (count_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
  }

  Summary& operator+=(const Summary& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace frugal::stats
