// Paper-style table / series output.
//
// The benchmark harnesses print rows with aligned columns to stdout (the
// format used by EXPERIMENTS.md) and optionally write CSV files when
// FRUGAL_CSV_DIR is set.
#pragma once

#include <fstream>
#include <optional>
#include <string>
#include <vector>

namespace frugal::stats {

class Table {
 public:
  explicit Table(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  void add_numeric_row(const std::vector<double>& values, int precision = 3);

  /// The aligned-columns rendering print() writes to stdout, as a string —
  /// what the byte-identity tests (worker counts, shard merges) compare.
  [[nodiscard]] std::string to_string() const;

  /// Prints the table with aligned columns to stdout.
  void print() const;

  /// Writes CSV to `dir/<slug(title)>.csv`; returns the path written.
  [[nodiscard]] std::optional<std::string> write_csv(
      const std::string& dir) const;

  /// Prints to stdout and, when FRUGAL_CSV_DIR is set, also writes CSV there.
  void emit() const;

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (no trailing spaces).
[[nodiscard]] std::string format_double(double value, int precision = 3);

}  // namespace frugal::stats
