#include "stats/histogram.hpp"

#include <cstdio>

namespace frugal::stats {

std::string Histogram::summary() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "n=%zu p50=%.2f p90=%.2f p99=%.2f",
                total_, quantile(0.5), quantile(0.9), quantile(0.99));
  return buf;
}

}  // namespace frugal::stats
