// Fixed-bucket histogram for latency and delay distributions.
//
// The experiment harness reports delivery-latency percentiles (how long an
// event needs to reach its subscribers); a simple linear-bucket histogram is
// enough and keeps runs deterministic (no data-dependent allocation).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/expect.hpp"

namespace frugal::stats {

class Histogram {
 public:
  /// Buckets of width `bucket_width` covering [0, bucket_width * count);
  /// values beyond the range land in the overflow bucket.
  Histogram(double bucket_width, std::size_t bucket_count)
      : bucket_width_{bucket_width}, counts_(bucket_count + 1, 0) {
    FRUGAL_EXPECT(bucket_width > 0);
    FRUGAL_EXPECT(bucket_count > 0);
  }

  void add(double value) {
    FRUGAL_EXPECT(value >= 0);
    const auto bucket = static_cast<std::size_t>(value / bucket_width_);
    counts_[std::min(bucket, counts_.size() - 1)] += 1;
    ++total_;
  }

  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size() - 1; }
  [[nodiscard]] std::size_t overflow() const { return counts_.back(); }
  [[nodiscard]] std::size_t bucket(std::size_t i) const {
    FRUGAL_EXPECT(i < counts_.size());
    return counts_[i];
  }

  /// Value at or below which `q` (0..1] of the samples fall; linear
  /// interpolation inside the bucket. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const {
    FRUGAL_EXPECT(q > 0 && q <= 1);
    if (total_ == 0) return 0;
    const auto target = static_cast<std::size_t>(
        q * static_cast<double>(total_) + 0.5);
    std::size_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] == 0) continue;
      if (seen + counts_[i] >= target) {
        const double fraction =
            static_cast<double>(target - seen) /
            static_cast<double>(counts_[i]);
        return (static_cast<double>(i) + fraction) * bucket_width_;
      }
      seen += counts_[i];
    }
    return static_cast<double>(counts_.size()) * bucket_width_;
  }

  /// One-line summary "p50=… p90=… p99=… max_bucket=…" for logs.
  [[nodiscard]] std::string summary() const;

 private:
  double bucket_width_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;
};

}  // namespace frugal::stats
