// City-section mobility (Davies 2000), as used in the paper's second
// evaluation: nodes move only along streets, at the speed limit of the street
// they are on, pausing at intersections (red lights, parking) and picking
// destinations biased toward popular areas.
#pragma once

#include <cstdint>
#include <vector>

#include "mobility/mobility.hpp"
#include "mobility/street_graph.hpp"
#include "util/rng.hpp"

namespace frugal::mobility {

struct CitySectionConfig {
  /// Probability of stopping at each traversed intersection (red light ...).
  double stop_probability = 0.3;
  SimDuration stop_min = SimDuration::from_seconds(2.0);
  SimDuration stop_max = SimDuration::from_seconds(15.0);
  /// Pause at the journey destination before picking the next one. Short
  /// pauses keep the processes circulating, which calibrates the model's
  /// encounter rate to the paper's reported city-section reliability (~77%
  /// at 100% subscribers / 150 s validity / 1 s heartbeats).
  SimDuration destination_pause_min = SimDuration::from_seconds(2.0);
  SimDuration destination_pause_max = SimDuration::from_seconds(15.0);
};

class CitySection final : public MobilityModel {
 public:
  /// The graph must be strongly connected (make_campus_grid guarantees it).
  CitySection(const StreetGraph& graph, CitySectionConfig config,
              std::size_t node_count, Rng rng_root);

  [[nodiscard]] Vec2 position(NodeId node, SimTime t) override;
  [[nodiscard]] double speed(NodeId node, SimTime t) override;
  [[nodiscard]] std::size_t node_count() const override {
    return nodes_.size();
  }
  [[nodiscard]] double max_speed_mps() const override { return max_speed_; }

  [[nodiscard]] const StreetGraph& graph() const { return graph_; }

 private:
  struct Leg {
    SimTime start;
    SimTime end;
    Vec2 from;
    Vec2 to;
    double speed_mps = 0;  ///< 0 for pauses
  };

  struct NodeState {
    bool initialized = false;
    Rng rng{0};
    IntersectionId at = 0;  ///< intersection where the trajectory resumes
    std::vector<Leg> legs;
    std::size_t cursor = 0;
  };

  const Leg& leg_at(NodeId node, SimTime t);
  void init_node(NodeId node, NodeState& st);
  void extend(NodeState& st);
  [[nodiscard]] IntersectionId pick_destination(NodeState& st) const;

  const StreetGraph& graph_;
  CitySectionConfig config_;
  Rng rng_root_;
  std::vector<NodeState> nodes_;
  std::vector<double> intersection_weights_;
  double max_speed_ = 0.0;
};

}  // namespace frugal::mobility
