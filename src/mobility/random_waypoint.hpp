// Random-waypoint mobility (Johnson & Maltz 1996), as used in the paper's
// first evaluation: each node repeatedly picks a uniformly random waypoint in
// the rectangular area and a uniformly random speed in [speed_min, speed_max],
// travels there in a straight line, pauses, and repeats.
//
// Trajectories are generated lazily per node and cached, so position queries
// are deterministic functions of (seed, node, t) regardless of query order.
#pragma once

#include <cstdint>
#include <vector>

#include "mobility/mobility.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace frugal::mobility {

struct RandomWaypointConfig {
  double width_m = 5000.0;   ///< area width (paper: 5 km x 5 km = 25 km^2)
  double height_m = 5000.0;  ///< area height
  double speed_min_mps = 1.0;
  double speed_max_mps = 1.0;
  SimDuration pause = SimDuration::from_seconds(1.0);  ///< paper: 1 s
  /// When true each node draws ONE speed for the whole run from
  /// [speed_min, speed_max] (the paper's heterogeneous experiment, Fig. 12);
  /// when false a fresh speed is drawn per leg (classic random waypoint).
  bool per_node_constant_speed = false;
};

class RandomWaypoint final : public MobilityModel {
 public:
  RandomWaypoint(RandomWaypointConfig config, std::size_t node_count,
                 Rng rng_root)
      : config_{config}, rng_root_{rng_root}, nodes_(node_count) {
    FRUGAL_EXPECT(config.width_m > 0 && config.height_m > 0);
    FRUGAL_EXPECT(config.speed_min_mps > 0);
    FRUGAL_EXPECT(config.speed_max_mps >= config.speed_min_mps);
    FRUGAL_EXPECT(!config.pause.is_negative());
  }

  [[nodiscard]] Vec2 position(NodeId node, SimTime t) override {
    const Leg& leg = leg_at(node, t);
    if (leg.speed_mps == 0.0 || t <= leg.start) return leg.from;
    const double f = (t - leg.start).seconds() / (leg.end - leg.start).seconds();
    return leg.from + (leg.to - leg.from) * f;
  }

  [[nodiscard]] double speed(NodeId node, SimTime t) override {
    return leg_at(node, t).speed_mps;
  }

  [[nodiscard]] std::size_t node_count() const override {
    return nodes_.size();
  }
  [[nodiscard]] double max_speed_mps() const override {
    return config_.speed_max_mps;
  }

 private:
  /// One straight-line travel leg or a pause (speed 0, from == to).
  struct Leg {
    SimTime start;
    SimTime end;
    Vec2 from;
    Vec2 to;
    double speed_mps = 0;
  };

  struct NodeState {
    bool initialized = false;
    double constant_speed = 0;  // used when per_node_constant_speed
    Rng rng{0};
    std::vector<Leg> legs;
    std::size_t cursor = 0;  // hint: index of the last leg returned
  };

  const Leg& leg_at(NodeId node, SimTime t) {
    FRUGAL_EXPECT(node < nodes_.size());
    NodeState& st = nodes_[node];
    if (!st.initialized) init_node(node, st);
    // Fast path: queries are nearly monotonic; advance the cursor.
    if (st.cursor < st.legs.size() && t < st.legs[st.cursor].start) {
      st.cursor = 0;  // rare backwards query (tests)
    }
    for (;;) {
      while (st.cursor + 1 < st.legs.size() && t > st.legs[st.cursor].end) {
        ++st.cursor;
      }
      if (t <= st.legs[st.cursor].end) return st.legs[st.cursor];
      extend(st);
    }
  }

  void init_node(NodeId node, NodeState& st) {
    st.rng = rng_root_.split(node);
    st.initialized = true;
    st.constant_speed =
        st.rng.uniform(config_.speed_min_mps, config_.speed_max_mps);
    const Vec2 start{st.rng.uniform(0, config_.width_m),
                     st.rng.uniform(0, config_.height_m)};
    // Seed trajectory with a zero-length pause so legs are never empty.
    st.legs.push_back(Leg{SimTime::zero(), SimTime::zero() + config_.pause,
                          start, start, 0.0});
  }

  void extend(NodeState& st) {
    const Leg& last = st.legs.back();
    const Vec2 from = last.to;
    const Vec2 to{st.rng.uniform(0, config_.width_m),
                  st.rng.uniform(0, config_.height_m)};
    const double speed =
        config_.per_node_constant_speed
            ? st.constant_speed
            : st.rng.uniform(config_.speed_min_mps, config_.speed_max_mps);
    const double dist = distance(from, to);
    const SimTime depart = last.end;
    const SimTime arrive = depart + SimDuration::from_seconds(dist / speed);
    st.legs.push_back(Leg{depart, arrive, from, to, speed});
    if (config_.pause.us() > 0) {
      st.legs.push_back(Leg{arrive, arrive + config_.pause, to, to, 0.0});
    }
  }

  RandomWaypointConfig config_;
  Rng rng_root_;
  std::vector<NodeState> nodes_;
};

}  // namespace frugal::mobility
