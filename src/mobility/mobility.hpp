// Mobility model interface.
//
// A model answers "where is node i at time t" and "how fast is it moving".
// Implementations are deterministic functions of their seed; queries must be
// supported for any non-decreasing sequence of times per node (the simulator
// only moves forward), and may be repeated at the same time.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/time.hpp"
#include "util/types.hpp"
#include "util/vec2.hpp"

namespace frugal::mobility {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Position of `node` at time `t`, meters.
  [[nodiscard]] virtual Vec2 position(NodeId node, SimTime t) = 0;

  /// Instantaneous scalar speed of `node` at time `t`, m/s. The paper's
  /// heartbeat optionally carries this (tachometer reading).
  [[nodiscard]] virtual double speed(NodeId node, SimTime t) = 0;

  [[nodiscard]] virtual std::size_t node_count() const = 0;

  /// Conservative upper bound on any node's speed at any time, m/s. The
  /// medium's spatial index uses it to bound how far positions can drift
  /// between grid rebuilds: over-estimates only cost extra rebuild/query
  /// work, under-estimates would silently miss receivers.
  [[nodiscard]] virtual double max_speed_mps() const = 0;

  /// Monotone counter bumped whenever positions change outside the model's
  /// own time evolution (e.g. StaticMobility::move_node teleports), so
  /// position caches such as the medium's spatial index can invalidate
  /// themselves. Models whose positions are pure functions of time keep the
  /// default constant 0.
  [[nodiscard]] virtual std::uint64_t position_revision() const { return 0; }
};

}  // namespace frugal::mobility
