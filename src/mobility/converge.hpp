// Converge/disperse mobility: every node heads for one rally point, dwells
// there, then scatters back out — the adversarial flash-crowd pattern the
// `adversarial_mobility` scenario family stresses the protocol with. While
// converged the whole population sits inside everyone's radio range (maximum
// contention, every broadcast overheard by all); after dispersal the network
// is as sparse as the area allows and only residual event validity can still
// deliver.
//
// Trajectories are deterministic functions of (seed, node): a seeded start
// position, a seeded slot on a small disc around the rally point (so the
// crowd is dense but not degenerate), and a seeded dispersal target. Every
// node arrives exactly at `converge_by` — nodes too far away to make it at
// `speed_mps` simply move faster, which is what an adversary would do.
#pragma once

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "mobility/mobility.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace frugal::mobility {

struct ConvergeConfig {
  double width_m = 2000.0;
  double height_m = 2000.0;
  /// Dispersal-leg speed; also the convergence-leg speed when the node can
  /// reach its slot in time at it.
  double speed_mps = 10.0;
  Vec2 rally{1000.0, 1000.0};
  /// Nodes park on a uniform disc of this radius around the rally point.
  double rally_radius_m = 15.0;
  /// Every node is at its rally slot from `converge_by` until `disperse_at`.
  SimTime converge_by = SimTime::from_seconds(180.0);
  SimTime disperse_at = SimTime::from_seconds(240.0);
};

class ConvergeDisperse final : public MobilityModel {
 public:
  ConvergeDisperse(ConvergeConfig config, std::size_t node_count,
                   Rng rng_root)
      : config_{config}, rng_root_{rng_root}, nodes_(node_count) {
    FRUGAL_EXPECT(config.width_m > 0 && config.height_m > 0);
    FRUGAL_EXPECT(config.speed_mps > 0);
    FRUGAL_EXPECT(config.rally_radius_m >= 0);
    FRUGAL_EXPECT(config.converge_by > SimTime::zero());
    FRUGAL_EXPECT(config.disperse_at >= config.converge_by);
  }

  [[nodiscard]] Vec2 position(NodeId node, SimTime t) override {
    const Plan& plan = plan_of(node);
    if (t <= plan.depart_in) return plan.start;
    if (t < config_.converge_by) {
      return lerp(plan.start, plan.slot, plan.depart_in, config_.converge_by,
                  t);
    }
    if (t <= config_.disperse_at) return plan.slot;
    if (t < plan.arrive_out) {
      return lerp(plan.slot, plan.away, config_.disperse_at, plan.arrive_out,
                  t);
    }
    return plan.away;
  }

  [[nodiscard]] double speed(NodeId node, SimTime t) override {
    const Plan& plan = plan_of(node);
    if (t > plan.depart_in && t < config_.converge_by) return plan.speed_in;
    if (t > config_.disperse_at && t < plan.arrive_out) {
      return config_.speed_mps;
    }
    return 0.0;
  }

  [[nodiscard]] std::size_t node_count() const override {
    return nodes_.size();
  }

  [[nodiscard]] double max_speed_mps() const override {
    // Late starters move faster than speed_mps so they still arrive exactly
    // at converge_by; the worst case starts at the area corner farthest from
    // the rally disc and covers that distance in the whole window.
    double worst_dist = 0.0;
    for (const Vec2 corner : {Vec2{0, 0}, Vec2{config_.width_m, 0},
                              Vec2{0, config_.height_m},
                              Vec2{config_.width_m, config_.height_m}}) {
      worst_dist = std::max(worst_dist, distance(corner, config_.rally));
    }
    worst_dist += config_.rally_radius_m;
    const double window_s = (config_.converge_by - SimTime::zero()).seconds();
    return std::max(config_.speed_mps, worst_dist / window_s);
  }

 private:
  /// The whole deterministic trajectory: start -> slot (arriving exactly at
  /// converge_by) -> dwell -> away (at speed_mps), then parked.
  struct Plan {
    bool initialized = false;
    Vec2 start;
    Vec2 slot;
    Vec2 away;
    SimTime depart_in;
    double speed_in = 0;
    SimTime arrive_out;
  };

  static Vec2 lerp(Vec2 from, Vec2 to, SimTime begin, SimTime end,
                   SimTime t) {
    const double f = (t - begin).seconds() / (end - begin).seconds();
    return from + (to - from) * f;
  }

  const Plan& plan_of(NodeId node) {
    FRUGAL_EXPECT(node < nodes_.size());
    Plan& plan = nodes_[node];
    if (plan.initialized) return plan;
    Rng rng = rng_root_.split(node);
    plan.start = {rng.uniform(0, config_.width_m),
                  rng.uniform(0, config_.height_m)};
    const double angle = rng.uniform(0, 2 * std::numbers::pi);
    const double radius =
        config_.rally_radius_m * std::sqrt(rng.uniform());
    plan.slot = config_.rally +
                Vec2{radius * std::cos(angle), radius * std::sin(angle)};
    plan.away = {rng.uniform(0, config_.width_m),
                 rng.uniform(0, config_.height_m)};

    const double travel_s =
        distance(plan.start, plan.slot) / config_.speed_mps;
    const SimDuration window = config_.converge_by - SimTime::zero();
    if (travel_s < window.seconds()) {
      plan.depart_in =
          config_.converge_by - SimDuration::from_seconds(travel_s);
      plan.speed_in = config_.speed_mps;
    } else {
      plan.depart_in = SimTime::zero();
      plan.speed_in = distance(plan.start, plan.slot) / window.seconds();
    }
    plan.arrive_out =
        config_.disperse_at +
        SimDuration::from_seconds(distance(plan.slot, plan.away) /
                                  config_.speed_mps);
    plan.initialized = true;
    return plan;
  }

  ConvergeConfig config_;
  Rng rng_root_;
  std::vector<Plan> nodes_;
};

}  // namespace frugal::mobility
