// Trivial models used by tests and the quickstart example.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "mobility/mobility.hpp"
#include "util/expect.hpp"

namespace frugal::mobility {

/// Nodes that never move.
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(std::vector<Vec2> positions)
      : positions_{std::move(positions)} {}

  [[nodiscard]] Vec2 position(NodeId node, SimTime /*t*/) override {
    FRUGAL_EXPECT(node < positions_.size());
    return positions_[node];
  }
  [[nodiscard]] double speed(NodeId /*node*/, SimTime /*t*/) override {
    return 0.0;
  }
  [[nodiscard]] std::size_t node_count() const override {
    return positions_.size();
  }
  [[nodiscard]] double max_speed_mps() const override { return 0.0; }
  [[nodiscard]] std::uint64_t position_revision() const override {
    return revision_;
  }

  /// Teleports a node (between queries); used by tests to script topologies.
  void move_node(NodeId node, Vec2 to) {
    FRUGAL_EXPECT(node < positions_.size());
    positions_[node] = to;
    ++revision_;  // teleports break the max-speed drift bound; tell caches
  }

 private:
  std::vector<Vec2> positions_;
  std::uint64_t revision_ = 0;
};

/// Piecewise-linear scripted trajectories: each node follows straight lines
/// between (time, position) knots, holding the last position afterwards.
class WaypointTrace final : public MobilityModel {
 public:
  struct Knot {
    SimTime at;
    Vec2 pos;
  };

  explicit WaypointTrace(std::vector<std::vector<Knot>> trajectories)
      : trajectories_{std::move(trajectories)} {
    for (const auto& traj : trajectories_) {
      FRUGAL_EXPECT(!traj.empty());
      for (std::size_t i = 1; i < traj.size(); ++i) {
        FRUGAL_EXPECT(traj[i - 1].at < traj[i].at);
        const double leg_speed =
            distance(traj[i - 1].pos, traj[i].pos) /
            (traj[i].at - traj[i - 1].at).seconds();
        max_speed_ = std::max(max_speed_, leg_speed);
      }
    }
  }

  [[nodiscard]] Vec2 position(NodeId node, SimTime t) override {
    const auto& traj = trajectory(node);
    if (t <= traj.front().at) return traj.front().pos;
    for (std::size_t i = 1; i < traj.size(); ++i) {
      if (t <= traj[i].at) {
        const auto& a = traj[i - 1];
        const auto& b = traj[i];
        const double f =
            (t - a.at).seconds() / (b.at - a.at).seconds();
        return a.pos + (b.pos - a.pos) * f;
      }
    }
    return traj.back().pos;
  }

  [[nodiscard]] double speed(NodeId node, SimTime t) override {
    const auto& traj = trajectory(node);
    if (t <= traj.front().at || t > traj.back().at) return 0.0;
    for (std::size_t i = 1; i < traj.size(); ++i) {
      if (t <= traj[i].at) {
        const auto& a = traj[i - 1];
        const auto& b = traj[i];
        return distance(a.pos, b.pos) / (b.at - a.at).seconds();
      }
    }
    return 0.0;
  }

  [[nodiscard]] std::size_t node_count() const override {
    return trajectories_.size();
  }
  [[nodiscard]] double max_speed_mps() const override { return max_speed_; }

 private:
  [[nodiscard]] const std::vector<Knot>& trajectory(NodeId node) const {
    FRUGAL_EXPECT(node < trajectories_.size());
    return trajectories_[node];
  }

  std::vector<std::vector<Knot>> trajectories_;
  double max_speed_ = 0.0;
};

}  // namespace frugal::mobility
