#include "mobility/street_graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace frugal::mobility {

std::vector<std::uint32_t> StreetGraph::fastest_route(IntersectionId from,
                                                      IntersectionId to) const {
  FRUGAL_EXPECT(from < positions_.size());
  FRUGAL_EXPECT(to < positions_.size());
  if (from == to) return {};

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(positions_.size(), kInf);
  std::vector<std::uint32_t> via(positions_.size(),
                                 std::numeric_limits<std::uint32_t>::max());
  using Item = std::pair<double, IntersectionId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;

  dist[from] = 0;
  frontier.emplace(0.0, from);
  while (!frontier.empty()) {
    const auto [d, u] = frontier.top();
    frontier.pop();
    if (d > dist[u]) continue;
    if (u == to) break;
    for (std::uint32_t e : adjacency_[u]) {
      const Street& s = streets_[e];
      const double travel = street_length(e) / s.speed_limit_mps;
      if (dist[u] + travel < dist[s.to]) {
        dist[s.to] = dist[u] + travel;
        via[s.to] = e;
        frontier.emplace(dist[s.to], s.to);
      }
    }
  }

  if (dist[to] == kInf) return {};
  std::vector<std::uint32_t> route;
  for (IntersectionId v = to; v != from;) {
    const std::uint32_t e = via[v];
    route.push_back(e);
    v = streets_[e].from;
  }
  std::reverse(route.begin(), route.end());
  return route;
}

bool StreetGraph::strongly_connected() const {
  if (positions_.empty()) return true;
  // Forward reachability from vertex 0, then reachability in the transpose.
  const auto reachable = [&](bool forward) {
    std::vector<std::vector<IntersectionId>> adj(positions_.size());
    for (const Street& s : streets_) {
      if (forward) {
        adj[s.from].push_back(s.to);
      } else {
        adj[s.to].push_back(s.from);
      }
    }
    std::vector<bool> seen(positions_.size(), false);
    std::vector<IntersectionId> stack{0};
    seen[0] = true;
    std::size_t count = 1;
    while (!stack.empty()) {
      const IntersectionId u = stack.back();
      stack.pop_back();
      for (IntersectionId v : adj[u]) {
        if (!seen[v]) {
          seen[v] = true;
          ++count;
          stack.push_back(v);
        }
      }
    }
    return count == positions_.size();
  };
  return reachable(true) && reachable(false);
}

namespace {

StreetGraph build_campus_grid_once(const CampusGridConfig& config, Rng& rng) {
  StreetGraph graph;
  const double dx = config.width_m / (config.columns - 1);
  const double dy = config.height_m / (config.rows - 1);
  const auto vertex = [&](std::uint32_t col, std::uint32_t row) {
    return static_cast<IntersectionId>(row * config.columns + col);
  };

  for (std::uint32_t row = 0; row < config.rows; ++row) {
    for (std::uint32_t col = 0; col < config.columns; ++col) {
      graph.add_intersection({col * dx, row * dy});
    }
  }

  // One "main street" row and one main avenue column attract most traffic.
  const auto main_row = static_cast<std::uint32_t>(
      rng.uniform_u64(config.rows));
  const auto main_col = static_cast<std::uint32_t>(
      rng.uniform_u64(config.columns));

  const auto add_road = [&](IntersectionId a, IntersectionId b, bool main) {
    const double limit =
        rng.uniform(config.speed_min_mps, config.speed_max_mps);
    const double popularity = main ? config.main_road_popularity : 1.0;
    // Border streets stay two-way so the graph remains strongly connected
    // regardless of the random one-way picks.
    const Vec2 pa = graph.position(a);
    const Vec2 pb = graph.position(b);
    const bool border = pa.x == 0 || pa.y == 0 || pb.x == 0 || pb.y == 0 ||
                        pa.x >= config.width_m - 1e-9 ||
                        pa.y >= config.height_m - 1e-9 ||
                        pb.x >= config.width_m - 1e-9 ||
                        pb.y >= config.height_m - 1e-9;
    if (!border && !main && rng.bernoulli(config.one_way_fraction)) {
      if (rng.bernoulli(0.5)) {
        graph.add_street({a, b, limit, popularity});
      } else {
        graph.add_street({b, a, limit, popularity});
      }
    } else {
      graph.add_two_way(a, b, limit, popularity);
    }
  };

  for (std::uint32_t row = 0; row < config.rows; ++row) {
    for (std::uint32_t col = 0; col + 1 < config.columns; ++col) {
      add_road(vertex(col, row), vertex(col + 1, row), row == main_row);
    }
  }
  for (std::uint32_t col = 0; col < config.columns; ++col) {
    for (std::uint32_t row = 0; row + 1 < config.rows; ++row) {
      add_road(vertex(col, row), vertex(col, row + 1), col == main_col);
    }
  }

  return graph;
}

}  // namespace

StreetGraph make_campus_grid(const CampusGridConfig& config, Rng& rng) {
  FRUGAL_EXPECT(config.columns >= 2 && config.rows >= 2);
  FRUGAL_EXPECT(config.speed_min_mps > 0);
  FRUGAL_EXPECT(config.speed_max_mps >= config.speed_min_mps);
  FRUGAL_EXPECT(config.one_way_fraction >= 0 && config.one_way_fraction <= 1);

  // Random one-way assignments can, rarely, orphan an interior intersection;
  // redraw until the street network is strongly connected (two-way borders
  // make success overwhelmingly likely per attempt).
  for (int attempt = 0; attempt < 64; ++attempt) {
    StreetGraph graph = build_campus_grid_once(config, rng);
    if (graph.strongly_connected()) return graph;
  }
  // Fall back to an all-two-way grid, which is always strongly connected.
  CampusGridConfig two_way = config;
  two_way.one_way_fraction = 0.0;
  StreetGraph graph = build_campus_grid_once(two_way, rng);
  FRUGAL_ENSURE(graph.strongly_connected());
  return graph;
}

}  // namespace frugal::mobility
