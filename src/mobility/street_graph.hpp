// Street network for the city-section mobility model.
//
// Intersections are graph vertices with 2-D positions; streets are directed
// edges with a speed limit and a "popularity" weight. Popularity models the
// paper's observation that on the EPFL campus "some roads are more often used
// than others": journey destinations and route choices are biased toward
// popular streets, which creates the social meeting points the paper credits
// for the city-section reliability profile.
#pragma once

#include <cstdint>
#include <vector>

#include "util/expect.hpp"
#include "util/rng.hpp"
#include "util/vec2.hpp"

namespace frugal::mobility {

using IntersectionId = std::uint32_t;

struct Street {
  IntersectionId from = 0;
  IntersectionId to = 0;
  double speed_limit_mps = 10.0;
  double popularity = 1.0;  ///< relative traffic weight (>= 0)
};

class StreetGraph {
 public:
  IntersectionId add_intersection(Vec2 position) {
    positions_.push_back(position);
    adjacency_.emplace_back();
    return static_cast<IntersectionId>(positions_.size() - 1);
  }

  /// Adds a directed street. Use add_two_way for ordinary roads; omit the
  /// reverse edge for one-way lanes.
  void add_street(Street street) {
    FRUGAL_EXPECT(street.from < positions_.size());
    FRUGAL_EXPECT(street.to < positions_.size());
    FRUGAL_EXPECT(street.from != street.to);
    FRUGAL_EXPECT(street.speed_limit_mps > 0);
    FRUGAL_EXPECT(street.popularity >= 0);
    streets_.push_back(street);
    adjacency_[street.from].push_back(
        static_cast<std::uint32_t>(streets_.size() - 1));
  }

  void add_two_way(IntersectionId a, IntersectionId b, double speed_limit_mps,
                   double popularity) {
    add_street({a, b, speed_limit_mps, popularity});
    add_street({b, a, speed_limit_mps, popularity});
  }

  [[nodiscard]] std::size_t intersection_count() const {
    return positions_.size();
  }
  [[nodiscard]] std::size_t street_count() const { return streets_.size(); }
  [[nodiscard]] Vec2 position(IntersectionId i) const {
    FRUGAL_EXPECT(i < positions_.size());
    return positions_[i];
  }
  [[nodiscard]] const Street& street(std::uint32_t e) const {
    FRUGAL_EXPECT(e < streets_.size());
    return streets_[e];
  }
  [[nodiscard]] const std::vector<std::uint32_t>& outgoing(
      IntersectionId i) const {
    FRUGAL_EXPECT(i < adjacency_.size());
    return adjacency_[i];
  }
  [[nodiscard]] double street_length(std::uint32_t e) const {
    const Street& s = street(e);
    return distance(positions_[s.from], positions_[s.to]);
  }

  /// Total popularity of streets incident to an intersection; used to bias
  /// destination choice toward busy areas.
  [[nodiscard]] double intersection_popularity(IntersectionId i) const {
    double total = 0;
    for (std::uint32_t e : outgoing(i)) total += street(e).popularity;
    return total;
  }

  /// Fastest route (by travel time at speed limits) from -> to as a list of
  /// street indices. Empty when from == to or `to` is unreachable.
  [[nodiscard]] std::vector<std::uint32_t> fastest_route(
      IntersectionId from, IntersectionId to) const;

  /// True if every intersection can reach every other one.
  [[nodiscard]] bool strongly_connected() const;

 private:
  std::vector<Vec2> positions_;
  std::vector<Street> streets_;
  std::vector<std::vector<std::uint32_t>> adjacency_;
};

/// Parameters for the procedurally generated Manhattan-style campus grid that
/// stands in for the paper's EPFL map (1200 x 900 m).
struct CampusGridConfig {
  double width_m = 1200.0;
  double height_m = 900.0;
  std::uint32_t columns = 7;  ///< north-south streets
  std::uint32_t rows = 6;     ///< east-west streets
  double speed_min_mps = 8.0;
  double speed_max_mps = 13.0;
  /// Fraction of interior streets that are one-way.
  double one_way_fraction = 0.15;
  /// Popularity multiplier applied to the designated "main" row/column,
  /// recreating the paper's unevenly used roads and meeting points.
  double main_road_popularity = 6.0;
};

/// Builds the campus street grid. Deterministic for a given rng state.
[[nodiscard]] StreetGraph make_campus_grid(const CampusGridConfig& config,
                                           Rng& rng);

}  // namespace frugal::mobility
