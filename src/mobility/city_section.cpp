#include "mobility/city_section.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace frugal::mobility {

CitySection::CitySection(const StreetGraph& graph, CitySectionConfig config,
                         std::size_t node_count, Rng rng_root)
    : graph_{graph},
      config_{config},
      rng_root_{rng_root},
      nodes_(node_count) {
  FRUGAL_EXPECT(graph.intersection_count() > 1);
  FRUGAL_EXPECT(config.stop_probability >= 0 && config.stop_probability <= 1);
  FRUGAL_EXPECT(config.stop_min <= config.stop_max);
  FRUGAL_EXPECT(config.destination_pause_min <= config.destination_pause_max);
  intersection_weights_.reserve(graph.intersection_count());
  for (IntersectionId i = 0;
       i < static_cast<IntersectionId>(graph.intersection_count()); ++i) {
    // Never fully zero so isolated-but-connected corners remain reachable
    // destinations.
    intersection_weights_.push_back(0.1 + graph.intersection_popularity(i));
  }
  // Nodes always drive at the speed limit of the street they are on, so the
  // fastest street bounds every node's speed at every time.
  for (std::uint32_t e = 0;
       e < static_cast<std::uint32_t>(graph.street_count()); ++e) {
    max_speed_ = std::max(max_speed_, graph.street(e).speed_limit_mps);
  }
}

Vec2 CitySection::position(NodeId node, SimTime t) {
  const Leg& leg = leg_at(node, t);
  if (leg.speed_mps == 0.0 || t <= leg.start) return leg.from;
  const double f = (t - leg.start).seconds() / (leg.end - leg.start).seconds();
  return leg.from + (leg.to - leg.from) * f;
}

double CitySection::speed(NodeId node, SimTime t) {
  return leg_at(node, t).speed_mps;
}

const CitySection::Leg& CitySection::leg_at(NodeId node, SimTime t) {
  FRUGAL_EXPECT(node < nodes_.size());
  NodeState& st = nodes_[node];
  if (!st.initialized) init_node(node, st);
  if (st.cursor < st.legs.size() && t < st.legs[st.cursor].start) {
    st.cursor = 0;  // rare backwards query (tests)
  }
  for (;;) {
    while (st.cursor + 1 < st.legs.size() && t > st.legs[st.cursor].end) {
      ++st.cursor;
    }
    if (t <= st.legs[st.cursor].end) return st.legs[st.cursor];
    extend(st);
  }
}

void CitySection::init_node(NodeId node, NodeState& st) {
  st.rng = rng_root_.split(node);
  st.initialized = true;
  st.at = pick_destination(st);
  const Vec2 start = graph_.position(st.at);
  st.legs.push_back(
      Leg{SimTime::zero(), SimTime::from_seconds(0.001), start, start, 0.0});
}

IntersectionId CitySection::pick_destination(NodeState& st) const {
  return static_cast<IntersectionId>(
      st.rng.weighted_index(intersection_weights_));
}

void CitySection::extend(NodeState& st) {
  // Plan the next journey: popularity-weighted destination, fastest route.
  IntersectionId destination = pick_destination(st);
  std::vector<std::uint32_t> route;
  for (int tries = 0; tries < 16 && route.empty(); ++tries) {
    if (destination != st.at) route = graph_.fastest_route(st.at, destination);
    if (route.empty()) destination = pick_destination(st);
  }
  SimTime clock = st.legs.back().end;

  if (route.empty()) {
    // Degenerate graph or repeated same-destination draws: idle briefly.
    const Vec2 here = graph_.position(st.at);
    st.legs.push_back(Leg{clock, clock + config_.destination_pause_min, here,
                          here, 0.0});
    return;
  }

  for (std::size_t i = 0; i < route.size(); ++i) {
    const Street& street = graph_.street(route[i]);
    const Vec2 from = graph_.position(street.from);
    const Vec2 to = graph_.position(street.to);
    const double length = distance(from, to);
    const SimTime arrive =
        clock + SimDuration::from_seconds(length / street.speed_limit_mps);
    st.legs.push_back(Leg{clock, arrive, from, to, street.speed_limit_mps});
    clock = arrive;
    const bool last_street = i + 1 == route.size();
    if (!last_street && st.rng.bernoulli(config_.stop_probability)) {
      const SimDuration stop = SimDuration::from_seconds(st.rng.uniform(
          config_.stop_min.seconds(), config_.stop_max.seconds()));
      st.legs.push_back(Leg{clock, clock + stop, to, to, 0.0});
      clock += stop;
    }
  }

  st.at = destination;
  const Vec2 here = graph_.position(destination);
  const SimDuration pause = SimDuration::from_seconds(
      st.rng.uniform(config_.destination_pause_min.seconds(),
                     config_.destination_pause_max.seconds()));
  st.legs.push_back(Leg{clock, clock + pause, here, here, 0.0});
}

}  // namespace frugal::mobility
