// Lightweight simulator self-profiler.
//
// A Profiler accumulates exclusive wall-clock time and invocation counts per
// named section; ProfileScope is the RAII entry point. Nested scopes charge
// their parent only for the time the parent itself was on top of the stack
// (exclusive self-time), so "scheduler.task" measures protocol logic net of
// the medium and telemetry work nested inside it.
//
// Profiling never touches simulated time, RNG streams or scheduler sequence
// numbers — attaching a profiler cannot perturb a run's outcome, only
// observe its host-side cost. The profiler is single-threaded by design
// (one per sweep job); per-job profilers are merged serially afterwards.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/expect.hpp"

namespace frugal::sim {

class Profiler {
 public:
  struct Section {
    std::int64_t wall_ns = 0;  ///< exclusive self-time
    std::int64_t count = 0;    ///< scope entries
  };

  /// Named sections in first-entry order (stable across identical runs).
  [[nodiscard]] const std::vector<std::pair<std::string, Section>>& sections()
      const {
    return sections_;
  }

  /// Index of `name`, creating the section on first use. Linear scan: the
  /// section set is a handful of subsystem names.
  [[nodiscard]] std::size_t section_index(std::string_view name) {
    for (std::size_t i = 0; i < sections_.size(); ++i) {
      if (sections_[i].first == name) return i;
    }
    sections_.emplace_back(std::string{name}, Section{});
    return sections_.size() - 1;
  }

  void enter(std::size_t section) {
    FRUGAL_EXPECT(section < sections_.size());
    const auto now = Clock::now();
    if (!stack_.empty()) charge_top(now);
    stack_.push_back(Active{section, now});
    sections_[section].second.count += 1;
  }

  void exit() {
    FRUGAL_EXPECT(!stack_.empty());
    const auto now = Clock::now();
    charge_top(now);
    stack_.pop_back();
    if (!stack_.empty()) stack_.back().since = now;
  }

  /// Folds another profiler's totals into this one (sections matched by
  /// name; new names are appended in the other's order).
  void merge(const Profiler& other) {
    for (const auto& [name, section] : other.sections_) {
      const std::size_t idx = section_index(name);
      sections_[idx].second.wall_ns += section.wall_ns;
      sections_[idx].second.count += section.count;
    }
  }

 private:
  using Clock = std::chrono::steady_clock;
  struct Active {
    std::size_t section;
    Clock::time_point since;
  };

  void charge_top(Clock::time_point now) {
    Active& top = stack_.back();
    sections_[top.section].second.wall_ns +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - top.since)
            .count();
    top.since = now;
  }

  std::vector<std::pair<std::string, Section>> sections_;
  std::vector<Active> stack_;
};

/// RAII section scope; a null profiler makes it a no-op.
class ProfileScope {
 public:
  ProfileScope(Profiler* profiler, std::string_view name)
      : profiler_{profiler} {
    if (profiler_) profiler_->enter(profiler_->section_index(name));
  }
  ~ProfileScope() {
    if (profiler_) profiler_->exit();
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler* profiler_;
};

}  // namespace frugal::sim
