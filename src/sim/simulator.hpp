// Simulation façade: owns the scheduler and the root RNG, and provides
// periodic-task plumbing shared by the protocol layers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace frugal::sim {

/// A repeating task with a mutable period. The next firing is scheduled when
/// the current one runs, so period changes (the paper's speed-adaptive
/// heartbeat) take effect on the next cycle. Stopping cancels the pending
/// firing.
class PeriodicTask {
 public:
  using Callback = std::function<void()>;

  PeriodicTask(Scheduler& scheduler, SimDuration period, Callback fn)
      : scheduler_{scheduler}, period_{period}, fn_{std::move(fn)} {
    FRUGAL_EXPECT(period.us() > 0);
  }

  ~PeriodicTask() { stop(); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Starts firing; the first run happens after `initial_delay`.
  void start(SimDuration initial_delay = SimDuration::zero()) {
    if (running_) return;
    running_ = true;
    arm(initial_delay);
  }

  void stop() {
    running_ = false;
    handle_.cancel();
  }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] SimDuration period() const { return period_; }

  /// Changes the period; applies from the next scheduling decision.
  void set_period(SimDuration period) {
    FRUGAL_EXPECT(period.us() > 0);
    period_ = period;
  }

 private:
  void arm(SimDuration delay) {
    handle_ = scheduler_.schedule_after(delay, [this] {
      if (!running_) return;
      fn_();
      if (running_) arm(period_);
    });
  }

  Scheduler& scheduler_;
  SimDuration period_;
  Callback fn_;
  bool running_ = false;
  TaskHandle handle_;
};

/// Owns the scheduler and the root random stream for one simulation run.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed) : root_rng_{seed} {}

  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] SimTime now() const { return scheduler_.now(); }

  /// Derives a named independent random stream (see Rng::split).
  [[nodiscard]] Rng stream(std::string_view name, std::uint64_t index = 0) {
    return root_rng_.split(fnv1a64(name) ^ (index * 0x9E3779B97F4A7C15ULL));
  }

  void run_until(SimTime t) { scheduler_.run_until(t); }
  void run_for(SimDuration d) { scheduler_.run_until(now() + d); }

 private:
  Rng root_rng_;
  Scheduler scheduler_;
};

}  // namespace frugal::sim
