// Discrete-event scheduler.
//
// A binary heap of (time, sequence) -> callback. Sequence numbers break ties
// in insertion order, which makes execution deterministic. Events can be
// cancelled through the TaskHandle returned at scheduling time; cancellation
// is O(1) (the entry is tombstoned and skipped on pop).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/profiler.hpp"
#include "util/expect.hpp"
#include "util/time.hpp"

namespace frugal::sim {

/// Cancellation/state token for a scheduled callback. Cheap to copy; all
/// copies refer to the same underlying scheduled entry.
class TaskHandle {
 public:
  TaskHandle() = default;

  /// True while the callback is scheduled and has neither run nor been
  /// cancelled. A default-constructed handle is never pending.
  [[nodiscard]] bool pending() const { return state_ && !state_->done; }

  /// Cancels the callback if still pending; otherwise no-op.
  void cancel() {
    if (state_) state_->done = true;
  }

 private:
  friend class Scheduler;
  struct State {
    bool done = false;
  };
  explicit TaskHandle(std::shared_ptr<State> state)
      : state_{std::move(state)} {}
  std::shared_ptr<State> state_;
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (must not be in the past).
  TaskHandle schedule_at(SimTime when, Callback fn) {
    FRUGAL_EXPECT(when >= now_);
    auto state = std::make_shared<TaskHandle::State>();
    heap_.push_back(Entry{when, next_seq_++, std::move(fn), state});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return TaskHandle{std::move(state)};
  }

  /// Schedules `fn` to run `delay` from now (delay must be >= 0).
  TaskHandle schedule_after(SimDuration delay, Callback fn) {
    FRUGAL_EXPECT(!delay.is_negative());
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Reserves `count` consecutive sequence numbers and returns the first.
  /// Entries later scheduled with these via schedule_at_with_sequence break
  /// ties exactly as if they had all been pushed upfront at reservation
  /// time — which is what lets a long publish chain schedule itself one
  /// event at a time (O(1) queued entries) while replaying the identical
  /// execution order of the O(n) upfront loop it replaces.
  [[nodiscard]] std::uint64_t reserve_sequence_block(std::uint64_t count) {
    FRUGAL_EXPECT(count > 0);
    const std::uint64_t first = next_seq_;
    next_seq_ += count;
    return first;
  }

  /// Schedules `fn` under a previously reserved sequence number. Each
  /// reserved sequence must be used at most once (uniqueness keeps the heap
  /// order total; the caller owns that contract).
  TaskHandle schedule_at_with_sequence(SimTime when, std::uint64_t seq,
                                       Callback fn) {
    FRUGAL_EXPECT(when >= now_);
    FRUGAL_EXPECT(seq < next_seq_);
    auto state = std::make_shared<TaskHandle::State>();
    heap_.push_back(Entry{when, seq, std::move(fn), state});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return TaskHandle{std::move(state)};
  }

  /// Attaches a self-profiler: every executed task is charged to the
  /// "scheduler.task" section (exclusive of profiled subsystems it calls
  /// into). Never affects simulated time or execution order.
  void set_profiler(Profiler* profiler) { profiler_ = profiler; }
  [[nodiscard]] Profiler* profiler() const { return profiler_; }

  /// Runs the next pending event, if any. Returns false when the queue holds
  /// no runnable event (empty or all tombstoned).
  bool step() {
    while (!heap_.empty()) {
      Entry entry = pop();
      if (entry.state->done) continue;  // cancelled
      entry.state->done = true;
      FRUGAL_ASSERT(entry.when >= now_);
      now_ = entry.when;
      ++executed_;
      {
        ProfileScope scope{profiler_, "scheduler.task"};
        entry.fn();
      }
      return true;
    }
    return false;
  }

  /// Runs events until the queue drains or the next event is past `until`;
  /// finishes with now() == until.
  void run_until(SimTime until) {
    FRUGAL_EXPECT(until >= now_);
    for (;;) {
      // Drop leading tombstones without advancing time.
      while (!heap_.empty() && heap_.front().state->done) pop();
      if (heap_.empty() || heap_.front().when > until) break;
      step();
    }
    now_ = until;
  }

  /// Runs everything currently schedulable (including events spawned during
  /// execution). Intended for tests; simulations should use run_until.
  void run_all() {
    while (step()) {
    }
  }

  /// Number of queue entries, including not-yet-collected tombstones.
  [[nodiscard]] std::size_t queued_count() const { return heap_.size(); }

  /// Number of callbacks actually executed so far.
  [[nodiscard]] std::uint64_t executed_count() const { return executed_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq = 0;
    Callback fn;
    std::shared_ptr<TaskHandle::State> state;
  };

  /// Heap comparator: max-heap on "later", so the earliest entry is on top.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Entry pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    return entry;
  }

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Entry> heap_;
  Profiler* profiler_ = nullptr;
};

}  // namespace frugal::sim
