// The protocol plug-in registry: every dissemination protocol the
// experiment layer can run, as self-contained modules.
//
// Mirrors the scenario registry (runner/registry.hpp): a ProtocolSpec is a
// registered name plus declared config knobs and a factory producing one
// ProtocolNode per process. ExperimentConfig carries only the registered
// name (and opaque per-protocol knob overrides); run_experiment resolves it
// here, so adding a protocol variant is a new module in src/protocol/ —
// core/experiment.cpp never changes again for one.
//
// Ordinals: each spec gets a stable integer identity assigned in
// registration order. The built-ins register in the order of the retired
// Protocol enum (frugal = 0, simple-flooding = 1, interests-aware-flooding
// = 2, neighbors-interests-flooding = 3), so every existing sweep axis
// value, CSV row and shard artifact keeps its meaning; new variants append.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hpp"
#include "core/node.hpp"
#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace frugal::protocol {

/// One declared per-protocol knob. Overrides arrive by key through
/// ExperimentConfig::protocol_params; undeclared keys abort at run start so
/// a typo cannot silently fall back to a default.
struct ProtocolParam {
  std::string key;
  double default_value = 0.0;
  std::string description;
};

/// Everything a protocol factory may wire a node into. The providers are
/// narrow seams: a module sees a node's speed or remaining charge fraction,
/// never the mobility model or the energy ledger behind them.
struct BuildContext {
  sim::Scheduler& scheduler;
  net::Medium& medium;
  const core::ExperimentConfig& config;
  /// Current speed of a node in m/s (the heartbeat tachometer seam).
  std::function<double(NodeId)> speed_of;
  /// Remaining battery charge in [0, 1]; null when the run carries no
  /// finite battery (metering-only or no EnergyConfig), in which case
  /// battery-adaptive modules degrade to their static behaviour.
  std::function<double(NodeId)> charge_fraction_of;
  /// Named independent RNG streams (Simulator::stream): drawing a stream a
  /// protocol owns never perturbs mobility/workload/jitter draws, so a
  /// randomized module cannot move another protocol's golden traces.
  std::function<Rng(std::string_view name, std::uint64_t index)> stream;
};

struct ProtocolSpec {
  std::string name;         ///< registry key, e.g. "battery-adaptive-frugal"
  std::string description;  ///< one-liner for --protocols
  std::vector<ProtocolParam> params;
  std::function<std::unique_ptr<core::ProtocolNode>(NodeId,
                                                    const BuildContext&)>
      make_node;
  /// Stable numeric identity, assigned at registration. Sweep axes and
  /// shard artifacts carry this value; names are the source of truth when
  /// both round-trip.
  int ordinal = -1;
};

class ProtocolRegistry {
 public:
  [[nodiscard]] static ProtocolRegistry& instance();

  /// Registers a spec and assigns its ordinal; aborts on a duplicate or
  /// empty name, a missing factory, or duplicate param keys.
  void add(ProtocolSpec spec);

  [[nodiscard]] const ProtocolSpec* find(std::string_view name) const;
  [[nodiscard]] const ProtocolSpec* by_ordinal(int ordinal) const;
  /// All registered specs in ordinal (registration) order. Pointers stay
  /// valid for the process lifetime.
  [[nodiscard]] std::vector<const ProtocolSpec*> all() const;

 private:
  ProtocolRegistry() = default;
  /// deque: growth never invalidates the spec pointers handed out.
  std::deque<ProtocolSpec> specs_;
};

/// Defined in builtin.cpp: registers every built-in protocol (idempotent).
/// Explicit call, not a static initializer — a static library would be free
/// to drop an unreferenced self-registering translation unit.
void register_builtin_protocols();

/// Convenience lookups that register the built-ins first.
[[nodiscard]] const ProtocolSpec* find_protocol(std::string_view name);
/// find_protocol that aborts with a message listing the registered names —
/// the round-trip gate for misspelled CLI/artifact protocol names.
[[nodiscard]] const ProtocolSpec& require_protocol(std::string_view name);
[[nodiscard]] const ProtocolSpec* protocol_by_ordinal(int ordinal);
[[nodiscard]] std::vector<const ProtocolSpec*> all_protocols();

/// The run's override for `key` if present, else `fallback`. (The declared
/// ProtocolParam default and the factory's fallback are the same constant
/// in every built-in module; validate_params keeps stray keys out.)
[[nodiscard]] double param_or(const core::ExperimentConfig& config,
                              std::string_view key, double fallback);

/// Aborts when config.protocol_params carries a key the spec never
/// declared — run_experiment calls this before building any node.
void validate_params(const ProtocolSpec& spec,
                     const core::ExperimentConfig& config);

/// Human-readable listing of every protocol with its knobs (the CLI's
/// --protocols).
[[nodiscard]] std::string describe_protocols();

}  // namespace frugal::protocol
