// Built-in protocol modules. Registration order is load-bearing: ordinals
// reproduce the retired core::Protocol enum values (frugal = 0,
// simple-flooding = 1, interests-aware-flooding = 2,
// neighbors-interests-flooding = 3), so every sweep axis value, CSV row and
// shard artifact written before the registry keeps its meaning. New
// variants append after the legacy four.

#include <memory>
#include <utility>

#include "core/flooding.hpp"
#include "core/frugal_node.hpp"
#include "protocol/adaptive_frugal.hpp"
#include "protocol/gossip_node.hpp"
#include "protocol/registry.hpp"

namespace frugal::protocol {

namespace {

// Adaptive-variant knob defaults (the declared ProtocolParam defaults and
// the factory fallbacks are these same constants).
constexpr double kHbStretchDefault = 3.0;
constexpr double kDozeBelowDefault = 0.35;
constexpr double kDozeFractionDefault = 0.75;
constexpr double kRefSpeedDefault = 10.0;
constexpr double kGossipPDefault = 0.3;

/// The frugal speed seam: wraps the context's per-id provider into the
/// per-node closure FrugalNode expects (bitwise-identical to the lambda the
/// experiment layer used to build inline).
std::function<double()> speed_provider_for(NodeId id,
                                           const BuildContext& ctx) {
  if (!ctx.speed_of) return nullptr;
  return [speed_of = ctx.speed_of, id] { return speed_of(id); };
}

ProtocolSpec frugal_spec() {
  ProtocolSpec spec;
  spec.name = "frugal";
  spec.description =
      "The paper's frugal dissemination algorithm (heartbeats, id exchange, "
      "back-off; FrugalConfig knobs via ExperimentConfig::frugal)";
  spec.make_node = [](NodeId id, const BuildContext& ctx) {
    return std::make_unique<core::FrugalNode>(id, ctx.scheduler, ctx.medium,
                                              ctx.config.frugal,
                                              speed_provider_for(id, ctx));
  };
  return spec;
}

ProtocolSpec flooding_spec(const char* name, const char* description,
                           core::FloodingVariant variant) {
  ProtocolSpec spec;
  spec.name = name;
  spec.description = description;
  spec.make_node = [variant](NodeId id, const BuildContext& ctx)
      -> std::unique_ptr<core::ProtocolNode> {
    core::FloodingConfig flooding = ctx.config.flooding;
    flooding.variant = variant;
    return std::make_unique<core::FloodingNode>(id, ctx.scheduler, ctx.medium,
                                                flooding);
  };
  return spec;
}

ProtocolSpec battery_adaptive_frugal_spec() {
  ProtocolSpec spec;
  spec.name = "battery-adaptive-frugal";
  spec.description =
      "Frugal with charge-aware energy management: hb_upper stretches as "
      "the battery drains, and below a charge threshold the node dozes a "
      "fraction of every beat (power-save sleep). Static frugal without a "
      "finite battery.";
  spec.params = {
      {"hb_stretch", kHbStretchDefault,
       "hb_upper multiplier at empty battery: effective = hb_upper * (1 + "
       "stretch * (1 - charge))"},
      {"doze_below", kDozeBelowDefault,
       "charge fraction that arms low-charge dozing (0 disables)"},
      {"doze_fraction", kDozeFractionDefault,
       "fraction of each beat spent in power-save sleep while dozing"},
  };
  spec.make_node = [](NodeId id, const BuildContext& ctx)
      -> std::unique_ptr<core::ProtocolNode> {
    core::FrugalConfig frugal = ctx.config.frugal;
    const double stretch =
        param_or(ctx.config, "hb_stretch", kHbStretchDefault);
    if (ctx.charge_fraction_of && stretch > 0) {
      frugal.hb_upper_dynamic = [charge_of = ctx.charge_fraction_of, id,
                                 base = frugal.hb_upper, stretch] {
        const double charge = std::clamp(charge_of(id), 0.0, 1.0);
        return base * (1.0 + stretch * (1.0 - charge));
      };
    }
    AdaptiveFrugalConfig adaptive;
    adaptive.doze_below =
        param_or(ctx.config, "doze_below", kDozeBelowDefault);
    adaptive.doze_fraction =
        param_or(ctx.config, "doze_fraction", kDozeFractionDefault);
    adaptive.doze_period = frugal.hb_upper;  // doze between heartbeat rounds
    std::function<double()> charge_provider;
    if (ctx.charge_fraction_of) {
      charge_provider = [charge_of = ctx.charge_fraction_of, id] {
        return charge_of(id);
      };
    }
    return std::make_unique<AdaptiveFrugalNode>(
        id, ctx.scheduler, ctx.medium, std::move(frugal),
        speed_provider_for(id, ctx), std::move(charge_provider), adaptive);
  };
  return spec;
}

ProtocolSpec speed_adaptive_frugal_spec() {
  ProtocolSpec spec;
  spec.name = "speed-adaptive-frugal";
  spec.description =
      "Frugal whose own hb_upper bound shrinks with the node's speed (fast "
      "movers beacon more, independent of the neighborhood average): "
      "effective = hb_upper / (1 + speed / ref_speed_mps)";
  spec.params = {
      {"ref_speed_mps", kRefSpeedDefault,
       "speed at which the heartbeat bound halves"},
  };
  spec.make_node = [](NodeId id, const BuildContext& ctx)
      -> std::unique_ptr<core::ProtocolNode> {
    core::FrugalConfig frugal = ctx.config.frugal;
    const double ref =
        param_or(ctx.config, "ref_speed_mps", kRefSpeedDefault);
    if (ctx.speed_of && ref > 0) {
      frugal.hb_upper_dynamic = [speed_of = ctx.speed_of, id,
                                 base = frugal.hb_upper, ref] {
        const double speed = std::max(speed_of(id), 0.0);
        return base / (1.0 + speed / ref);
      };
    }
    return std::make_unique<core::FrugalNode>(id, ctx.scheduler, ctx.medium,
                                              std::move(frugal),
                                              speed_provider_for(id, ctx));
  };
  return spec;
}

ProtocolSpec gossip_spec() {
  ProtocolSpec spec;
  spec.name = "gossip";
  spec.description =
      "Probabilistic gossip baseline: interests-aware storage, each stored "
      "valid event retransmitted with probability gossip_p per beat "
      "(FloodingConfig::period drives the beat)";
  spec.params = {
      {"gossip_p", kGossipPDefault,
       "per-tick retransmission probability of each stored event"},
  };
  spec.make_node = [](NodeId id, const BuildContext& ctx)
      -> std::unique_ptr<core::ProtocolNode> {
    GossipConfig gossip;
    gossip.forward_probability =
        param_or(ctx.config, "gossip_p", kGossipPDefault);
    gossip.period = ctx.config.flooding.period;
    gossip.store_capacity = ctx.config.flooding.store_capacity;
    return std::make_unique<GossipNode>(id, ctx.scheduler, ctx.medium, gossip,
                                        ctx.stream("gossip", id));
  };
  return spec;
}

}  // namespace

void register_builtin_protocols() {
  static const bool registered = [] {
    ProtocolRegistry& registry = ProtocolRegistry::instance();
    registry.add(frugal_spec());  // ordinal 0
    registry.add(flooding_spec(
        "simple-flooding",
        "Every beat, every process retransmits every valid event it holds",
        core::FloodingVariant::kSimple));  // ordinal 1
    registry.add(flooding_spec(
        "interests-aware-flooding",
        "Flooding that stores and retransmits only events the process "
        "itself subscribed to",
        core::FloodingVariant::kInterestAware));  // ordinal 2
    registry.add(flooding_spec(
        "neighbors-interests-flooding",
        "Interests-aware flooding plus heartbeat-derived neighbor "
        "knowledge: one transmission per known interested neighbor",
        core::FloodingVariant::kNeighborInterest));  // ordinal 3
    registry.add(battery_adaptive_frugal_spec());    // ordinal 4
    registry.add(speed_adaptive_frugal_spec());      // ordinal 5
    registry.add(gossip_spec());                     // ordinal 6
    return true;
  }();
  static_cast<void>(registered);
}

}  // namespace frugal::protocol
