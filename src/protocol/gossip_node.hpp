// Probabilistic gossip baseline: interests-aware flooding with a coin.
//
// Like the interests-aware flooding variant, a process stores only events
// it is itself interested in (plus its own publications) and runs a
// periodic retransmission ticker — but each stored valid event is
// retransmitted with probability `forward_probability` per tick instead of
// always. Classic gossip dissemination: at p ~ 0.3 the offered load drops
// to roughly a third of flooding's while dense neighborhoods still see
// every event with high probability.
//
// Determinism: the per-node coin is an independent named RNG stream handed
// in by the factory (Simulator::stream("gossip", id)), so gossip runs are
// seed-reproducible and drawing the stream perturbs no other protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "core/event_table.hpp"
#include "core/messages.hpp"
#include "core/node.hpp"
#include "core/wire.hpp"
#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "topics/subscription_set.hpp"
#include "util/rng.hpp"
#include "util/stable_map.hpp"

namespace frugal::protocol {

struct GossipConfig {
  /// Per-tick retransmission probability of each stored valid event.
  double forward_probability = 0.3;
  /// Retransmission ticker period (the energy_lifetime beat axis drives it
  /// through FloodingConfig::period).
  SimDuration period = SimDuration::from_seconds(1.0);
  std::size_t store_capacity = 4096;
};

class GossipNode final : public core::ProtocolNode {
 public:
  GossipNode(NodeId id, sim::Scheduler& scheduler, net::Medium& medium,
             GossipConfig config, Rng rng);

  [[nodiscard]] NodeId id() const override { return id_; }

  void subscribe(const topics::Topic& topic) override;
  void unsubscribe(const topics::Topic& topic) override;
  void publish(core::Event event) override;
  void on_frame(const net::Frame& frame) override;

  [[nodiscard]] const core::DeliveryMetrics& metrics() const override {
    return metrics_;
  }
  void set_delivery_callback(DeliveryCallback callback) override {
    delivery_callback_ = std::move(callback);
  }
  void enable_delivery_history_pruning(SimDuration slack) override {
    prune_slack_ = slack;
  }
  void set_phase_annotator(core::PhaseAnnotator* annotator) override {
    annotator_ = annotator;
  }

  [[nodiscard]] const topics::SubscriptionSet& subscriptions() const {
    return subscriptions_;
  }
  [[nodiscard]] std::size_t stored_event_count() const {
    return store_.size();
  }

 private:
  void tick();
  void on_event_bundle(const core::EventBundle& bundle);
  void maybe_store(const core::Event& event);
  void transmit_event(const core::Event& event,
                      core::DisseminationPhase phase);
  void deliver(const core::Event& event);

  NodeId id_;
  sim::Scheduler& scheduler_;
  net::Medium& medium_;
  GossipConfig config_;
  Rng rng_;

  topics::SubscriptionSet subscriptions_;
  det::hash_map<core::EventId, core::Event, core::EventIdHash> store_;

  sim::PeriodicTask ticker_;

  core::DeliveryMetrics metrics_;
  DeliveryCallback delivery_callback_;
  core::PhaseAnnotator* annotator_ = nullptr;
  std::optional<SimDuration> prune_slack_;
  std::uint32_t next_seq_ = 0;
};

}  // namespace frugal::protocol
