#include "protocol/registry.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/expect.hpp"

namespace frugal::protocol {

ProtocolRegistry& ProtocolRegistry::instance() {
  static ProtocolRegistry registry;
  return registry;
}

void ProtocolRegistry::add(ProtocolSpec spec) {
  FRUGAL_EXPECT(!spec.name.empty());
  FRUGAL_EXPECT(spec.make_node != nullptr);
  FRUGAL_EXPECT(find(spec.name) == nullptr && "duplicate protocol name");
  for (std::size_t i = 0; i < spec.params.size(); ++i) {
    FRUGAL_EXPECT(!spec.params[i].key.empty());
    for (std::size_t j = 0; j < i; ++j) {
      FRUGAL_EXPECT(spec.params[i].key != spec.params[j].key &&
                    "duplicate protocol param key");
    }
  }
  spec.ordinal = static_cast<int>(specs_.size());
  specs_.push_back(std::move(spec));
}

const ProtocolSpec* ProtocolRegistry::find(std::string_view name) const {
  for (const ProtocolSpec& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

const ProtocolSpec* ProtocolRegistry::by_ordinal(int ordinal) const {
  if (ordinal < 0 || static_cast<std::size_t>(ordinal) >= specs_.size()) {
    return nullptr;
  }
  return &specs_[static_cast<std::size_t>(ordinal)];
}

std::vector<const ProtocolSpec*> ProtocolRegistry::all() const {
  std::vector<const ProtocolSpec*> specs;
  specs.reserve(specs_.size());
  for (const ProtocolSpec& spec : specs_) specs.push_back(&spec);
  return specs;
}

const ProtocolSpec* find_protocol(std::string_view name) {
  register_builtin_protocols();
  return ProtocolRegistry::instance().find(name);
}

const ProtocolSpec& require_protocol(std::string_view name) {
  const ProtocolSpec* spec = find_protocol(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown protocol \"%.*s\"; registered protocols:",
                 static_cast<int>(name.size()), name.data());
    for (const ProtocolSpec* p : all_protocols()) {
      std::fprintf(stderr, " %s", p->name.c_str());
    }
    std::fprintf(stderr, "\n");
    std::abort();
  }
  return *spec;
}

const ProtocolSpec* protocol_by_ordinal(int ordinal) {
  register_builtin_protocols();
  return ProtocolRegistry::instance().by_ordinal(ordinal);
}

std::vector<const ProtocolSpec*> all_protocols() {
  register_builtin_protocols();
  return ProtocolRegistry::instance().all();
}

double param_or(const core::ExperimentConfig& config, std::string_view key,
                double fallback) {
  const auto it = config.protocol_params.find(std::string{key});
  return it == config.protocol_params.end() ? fallback : it->second;
}

void validate_params(const ProtocolSpec& spec,
                     const core::ExperimentConfig& config) {
  for (const auto& [key, value] : config.protocol_params) {
    static_cast<void>(value);
    bool declared = false;
    for (const ProtocolParam& param : spec.params) {
      declared |= param.key == key;
    }
    if (!declared) {
      std::fprintf(stderr,
                   "protocol \"%s\" declares no param \"%s\"; declared:",
                   spec.name.c_str(), key.c_str());
      for (const ProtocolParam& param : spec.params) {
        std::fprintf(stderr, " %s", param.key.c_str());
      }
      std::fprintf(stderr, "\n");
      std::abort();
    }
  }
}

std::string describe_protocols() {
  std::string out;
  for (const ProtocolSpec* spec : all_protocols()) {
    out += spec->name;
    if (spec->name.size() < 30) out.append(30 - spec->name.size(), ' ');
    out += ' ';
    out += spec->description;
    out += '\n';
    for (const ProtocolParam& param : spec->params) {
      char line[256];
      std::snprintf(line, sizeof line, "  %-26s %g  %s\n", param.key.c_str(),
                    param.default_value, param.description.c_str());
      out += line;
    }
  }
  return out;
}

}  // namespace frugal::protocol
