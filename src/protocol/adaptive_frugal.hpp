// Battery-adaptive frugal: the frugal algorithm wrapped in charge-aware
// energy management.
//
// Two levers, both driven by a narrow charge-fraction provider (no access
// to the energy ledger itself):
//  1. Heartbeat stretching — the node's hb_upper bound grows as the battery
//     drains (FrugalConfig::hb_upper_dynamic), so a tired node beacons and
//     garbage-collects more slowly. Cheap, but idle listening dominates the
//     WaveLAN power budget, so stretching alone cannot save a battery.
//  2. Low-charge dozing — below a charge threshold the node spends a
//     fraction of every beat in 802.11 power-save sleep (the medium's
//     sleeping radios overhear nothing but still wake to transmit). This is
//     what actually moves the survivor frontier: sleep draws ~8% of idle.
//
// Implemented as a decorator owning an inner FrugalNode: the inner node
// attaches itself to the medium and runs the unmodified protocol; the
// decorator only adds the doze duty cycle and forwards the ProtocolNode
// surface.
#pragma once

#include <functional>

#include "core/frugal_node.hpp"
#include "net/medium.hpp"
#include "sim/simulator.hpp"

namespace frugal::protocol {

struct AdaptiveFrugalConfig {
  /// Charge fraction below which low-charge dozing arms; 0 disables dozing.
  double doze_below = 0.35;
  /// Fraction of each doze round spent asleep while dozing (must be < 1).
  double doze_fraction = 0.5;
  /// Doze round length; the factory aligns it with the heartbeat bound.
  SimDuration doze_period = SimDuration::from_seconds(1.0);
};

class AdaptiveFrugalNode final : public core::ProtocolNode {
 public:
  /// `charge_provider` returns remaining charge in [0, 1]; null disables
  /// every adaptive behaviour (the node runs exactly like FrugalNode).
  AdaptiveFrugalNode(NodeId id, sim::Scheduler& scheduler, net::Medium& medium,
                     core::FrugalConfig config,
                     std::function<double()> speed_provider,
                     std::function<double()> charge_provider,
                     AdaptiveFrugalConfig adaptive);
  ~AdaptiveFrugalNode() override;

  [[nodiscard]] NodeId id() const override { return inner_.id(); }
  void subscribe(const topics::Topic& topic) override {
    inner_.subscribe(topic);
  }
  void unsubscribe(const topics::Topic& topic) override {
    inner_.unsubscribe(topic);
  }
  void publish(core::Event event) override { inner_.publish(std::move(event)); }
  void on_frame(const net::Frame& frame) override { inner_.on_frame(frame); }
  [[nodiscard]] const core::DeliveryMetrics& metrics() const override {
    return inner_.metrics();
  }
  void set_delivery_callback(DeliveryCallback callback) override {
    inner_.set_delivery_callback(std::move(callback));
  }
  void set_gc_callback(
      std::function<void(core::EventId, SimTime)> callback) override {
    inner_.set_gc_callback(std::move(callback));
  }
  void set_phase_annotator(core::PhaseAnnotator* annotator) override {
    inner_.set_phase_annotator(annotator);
  }
  void enable_delivery_history_pruning(SimDuration slack) override {
    inner_.enable_delivery_history_pruning(slack);
  }

  [[nodiscard]] const core::FrugalNode& inner() const { return inner_; }
  [[nodiscard]] bool dozing() const { return dozing_; }

 private:
  void on_doze_tick();

  sim::Scheduler& scheduler_;
  net::Medium& medium_;
  std::function<double()> charge_;
  AdaptiveFrugalConfig adaptive_;
  core::FrugalNode inner_;  ///< attaches itself to the medium
  sim::PeriodicTask doze_;
  sim::TaskHandle wake_;
  bool dozing_ = false;
};

}  // namespace frugal::protocol
