#include "protocol/adaptive_frugal.hpp"

#include <algorithm>
#include <utility>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace frugal::protocol {

namespace {
/// Deterministic per-node phase in [0, period): staggers the doze rounds so
/// a low network never sleeps in lockstep (same idiom as the experiment
/// layer's duty cycling, distinct salt).
SimDuration doze_phase(NodeId id, SimDuration period) {
  std::uint64_t state = 0xA24BAED4963EE407ULL ^ id;
  const std::uint64_t h = splitmix64(state);
  return SimDuration::from_us(static_cast<std::int64_t>(
      h % static_cast<std::uint64_t>(std::max<std::int64_t>(period.us(), 1))));
}
}  // namespace

AdaptiveFrugalNode::AdaptiveFrugalNode(NodeId id, sim::Scheduler& scheduler,
                                       net::Medium& medium,
                                       core::FrugalConfig config,
                                       std::function<double()> speed_provider,
                                       std::function<double()> charge_provider,
                                       AdaptiveFrugalConfig adaptive)
    : scheduler_{scheduler},
      medium_{medium},
      charge_{std::move(charge_provider)},
      adaptive_{adaptive},
      inner_{id, scheduler, medium, std::move(config),
             std::move(speed_provider)},
      doze_{scheduler, adaptive.doze_period, [this] { on_doze_tick(); }} {
  FRUGAL_EXPECT(adaptive_.doze_below >= 0 && adaptive_.doze_below <= 1);
  FRUGAL_EXPECT(adaptive_.doze_fraction >= 0 && adaptive_.doze_fraction < 1);
  FRUGAL_EXPECT(adaptive_.doze_period.us() > 0);
  if (charge_ && adaptive_.doze_below > 0 && adaptive_.doze_fraction > 0) {
    doze_.start(doze_phase(id, adaptive_.doze_period));
  }
}

AdaptiveFrugalNode::~AdaptiveFrugalNode() {
  // The wake lambda captures `this`; cancel it so a scheduler outliving the
  // node never runs into freed memory.
  wake_.cancel();
}

void AdaptiveFrugalNode::on_doze_tick() {
  const double charge = charge_();
  if (charge <= 0.0) {
    // Depleted: the experiment layer's kill switch owns the radio now, and
    // an empty battery needs no further sleep/wake events.
    doze_.stop();
    return;
  }
  if (charge >= adaptive_.doze_below) {
    dozing_ = false;
    return;
  }
  if (!medium_.is_up(inner_.id())) return;  // blackout: nothing to doze
  if (wake_.pending()) return;
  dozing_ = true;
  medium_.set_sleeping(inner_.id(), true);
  const SimDuration asleep = adaptive_.doze_period * adaptive_.doze_fraction;
  wake_ = scheduler_.schedule_after(asleep, [this] {
    medium_.set_sleeping(inner_.id(), false);
  });
}

}  // namespace frugal::protocol
