#include "protocol/gossip_node.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "util/expect.hpp"

namespace frugal::protocol {

namespace {
/// Deterministic per-node ticker phase in [0, period), distinct salt from
/// the flooding and frugal phases.
SimDuration phase_for(NodeId id, SimDuration period) {
  std::uint64_t state = 0x8CB92BA72F3D8DD7ULL ^ id;
  const std::uint64_t h = splitmix64(state);
  return SimDuration::from_us(static_cast<std::int64_t>(
      h % static_cast<std::uint64_t>(std::max<std::int64_t>(period.us(), 1))));
}
}  // namespace

GossipNode::GossipNode(NodeId id, sim::Scheduler& scheduler,
                       net::Medium& medium, GossipConfig config, Rng rng)
    : id_{id},
      scheduler_{scheduler},
      medium_{medium},
      config_{config},
      rng_{rng},
      ticker_{scheduler, config.period, [this] { tick(); }} {
  FRUGAL_EXPECT(config.forward_probability > 0 &&
                config.forward_probability <= 1);
  FRUGAL_EXPECT(config.period.us() > 0);
  FRUGAL_EXPECT(config.store_capacity > 0);
  medium_.attach(id_, this);
  ticker_.start(phase_for(id_, config_.period));
}

void GossipNode::subscribe(const topics::Topic& topic) {
  subscriptions_.add(topic);
}

void GossipNode::unsubscribe(const topics::Topic& topic) {
  subscriptions_.remove(topic);
}

void GossipNode::publish(core::Event event) {
  const SimTime now = scheduler_.now();
  event.id = core::EventId{id_, next_seq_++};
  event.published_at = now;
  FRUGAL_EXPECT(event.validity.us() > 0);
  maybe_store(event);
  if (subscriptions_.covers(event.topic)) deliver(event);
  // Initial broadcast is unconditional.
  transmit_event(event, core::DisseminationPhase::kPublish);
}

void GossipNode::tick() {
  const SimTime now = scheduler_.now();
  store_.erase_if([&](const auto& kv) { return !kv.second.valid_at(now); });
  if (prune_slack_.has_value()) metrics_.prune_deliveries(now, *prune_slack_);

  // Ascending-id order for reproducibility: the coin draws pair up with
  // events in a fixed order, so a run is a pure function of the seed.
  std::vector<const core::Event*> events;
  events.reserve(store_.size());
  store_.for_each_sorted([&](const core::EventId&, const core::Event& event) {
    events.push_back(&event);
  });
  for (const core::Event* event : events) {
    if (rng_.bernoulli(config_.forward_probability)) {
      transmit_event(*event, core::DisseminationPhase::kGossipForward);
    }
  }
}

void GossipNode::transmit_event(const core::Event& event,
                                core::DisseminationPhase phase) {
  core::EventBundle bundle;
  bundle.sender = id_;
  bundle.events = {event};
  metrics_.events_sent += 1;
  const std::uint32_t size = core::wire_size(bundle);
  const std::uint64_t frame_id = medium_.broadcast(
      id_, size, std::make_shared<const core::Message>(std::move(bundle)));
  if (annotator_ != nullptr) {
    annotator_->annotate(frame_id, id_, phase, {event.id});
  }
}

void GossipNode::maybe_store(const core::Event& event) {
  if (store_.contains(event.id)) return;
  // Interests-aware storage: only events we subscribe to — except a
  // publisher always keeps its own events so it can keep gossiping them.
  const bool keep = subscriptions_.covers(event.topic) ||
                    event.id.publisher == id_;
  if (!keep) return;
  if (store_.size() >= config_.store_capacity) return;  // memory full: drop
  store_.emplace(event.id, event);
}

void GossipNode::on_event_bundle(const core::EventBundle& bundle) {
  const SimTime now = scheduler_.now();
  for (const core::Event& event : bundle.events) {
    if (!subscriptions_.covers(event.topic)) {
      metrics_.parasites += 1;
      continue;
    }
    if (metrics_.delivered(event.id)) {
      metrics_.duplicates += 1;
      continue;
    }
    if (!event.valid_at(now)) continue;
    maybe_store(event);
    deliver(event);
  }
}

void GossipNode::deliver(const core::Event& event) {
  const SimTime now = scheduler_.now();
  const bool fresh =
      metrics_.deliveries
          .try_emplace(event.id, core::DeliveryRecord{now, event.expiry()})
          .inserted;
  if (!fresh) return;
  if (delivery_callback_) delivery_callback_(event, now);
}

void GossipNode::on_frame(const net::Frame& frame) {
  const auto message =
      std::any_cast<std::shared_ptr<const core::Message>>(&frame.payload);
  if (message == nullptr || *message == nullptr) return;
  std::visit(
      [this](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, core::EventBundle>) {
          on_event_bundle(m);
        } else {
          // Heartbeat / EventIdList: gossip ignores control traffic.
        }
      },
      **message);
}

}  // namespace frugal::protocol
