#include "energy/energy.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace frugal::energy {

namespace {
[[nodiscard]] constexpr std::size_t index_of(RadioState state) {
  return static_cast<std::size_t>(state);
}
}  // namespace

bool any_finite_battery(const EnergyConfig& config) {
  if (config.battery_capacity_per_node_j.empty()) {
    return config.battery_capacity_j > 0;
  }
  return std::any_of(config.battery_capacity_per_node_j.begin(),
                     config.battery_capacity_per_node_j.end(),
                     [](double capacity) { return capacity > 0; });
}

const char* to_string(RadioState state) {
  switch (state) {
    case RadioState::kOff:
      return "off";
    case RadioState::kSleep:
      return "sleep";
    case RadioState::kIdle:
      return "idle";
    case RadioState::kRx:
      return "rx";
    case RadioState::kTx:
      return "tx";
  }
  return "?";
}

EnergyModel::EnergyModel(std::size_t node_count, EnergyConfig config)
    : config_{config}, nodes_(node_count) {
  FRUGAL_EXPECT(node_count > 0);
  FRUGAL_EXPECT(config.radio.tx_mw >= 0);
  FRUGAL_EXPECT(config.radio.rx_mw >= 0);
  FRUGAL_EXPECT(config.radio.idle_mw >= 0);
  FRUGAL_EXPECT(config.radio.sleep_mw >= 0);
  FRUGAL_EXPECT(config.battery_capacity_per_node_j.empty() ||
                config.battery_capacity_per_node_j.size() == node_count);
  FRUGAL_EXPECT(config.sleep_fraction >= 0 && config.sleep_fraction < 1);
  FRUGAL_EXPECT(config.duty_period.us() > 0);
  FRUGAL_EXPECT(config.sample_period.us() > 0);
  draw_mw_by_state_[index_of(RadioState::kOff)] = 0.0;
  draw_mw_by_state_[index_of(RadioState::kSleep)] = config.radio.sleep_mw;
  draw_mw_by_state_[index_of(RadioState::kIdle)] = config.radio.idle_mw;
  draw_mw_by_state_[index_of(RadioState::kRx)] = config.radio.rx_mw;
  draw_mw_by_state_[index_of(RadioState::kTx)] = config.radio.tx_mw;
}

double EnergyModel::total_j(const NodeAccount& account) {
  double total = 0;
  for (const double spent : account.spent_by_state_j) total += spent;
  return total;
}

RadioState EnergyModel::state_at(const NodeAccount& account, SimTime t) {
  if (!account.up) return RadioState::kOff;
  if (t < account.tx_until) return RadioState::kTx;
  if (t < account.rx_until) return RadioState::kRx;
  if (account.sleeping) return RadioState::kSleep;
  return RadioState::kIdle;
}

void EnergyModel::advance(NodeId node, SimTime now) {
  FRUGAL_EXPECT(node < nodes_.size());
  NodeAccount& account = nodes_[node];
  if (now <= account.accounted_until) return;
  if (account.depleted) {  // an empty battery draws nothing further
    account.accounted_until = now;
    return;
  }

  SimTime cursor = account.accounted_until;
  const double capacity = capacity_j(node);
  bool just_depleted = false;
  while (cursor < now) {
    // The account's flags (up, sleeping) are constant over the unaccounted
    // span — flips advance first — so only the tx/rx deadlines can split it.
    const RadioState state = state_at(account, cursor);
    SimTime segment_end = now;
    if (state == RadioState::kTx) {
      segment_end = std::min(now, account.tx_until);
    } else if (state == RadioState::kRx) {
      segment_end = std::min(now, account.rx_until);
    }
    const std::size_t idx = index_of(state);
    const double draw_w = draw_mw_by_state_[idx] / 1000.0;
    const SimDuration span = segment_end - cursor;
    const double joules = draw_w * span.seconds();

    if (capacity > 0 && draw_w > 0 &&
        total_j(account) + joules >= capacity) {
      // The battery empties inside this span: solve the exact crossing
      // (monotone in capacity — a smaller battery crosses the same
      // trajectory strictly earlier).
      const double remaining = capacity - total_j(account);
      const SimDuration to_empty =
          SimDuration::from_seconds(remaining / draw_w);
      account.spent_by_state_j[idx] += remaining;
      if (state == RadioState::kSleep) account.asleep += to_empty;
      account.depleted = true;
      account.depleted_time = cursor + to_empty;
      just_depleted = true;
      break;
    }

    account.spent_by_state_j[idx] += joules;
    if (state == RadioState::kSleep) account.asleep += span;
    cursor = segment_end;
  }
  account.accounted_until = now;
  if (just_depleted && on_depleted_) {
    on_depleted_(node, account.depleted_time);
  }
}

void EnergyModel::advance_all(SimTime now) {
  for (NodeId node = 0; node < nodes_.size(); ++node) advance(node, now);
}

void EnergyModel::before_tx(NodeId sender, SimTime now) {
  // Settling up to `now` discovers any battery crossing since the last
  // report; the depletion callback then powers the radio down before the
  // medium commits the frame.
  advance(sender, now);
}

void EnergyModel::on_tx(NodeId sender, SimTime start, SimTime end) {
  FRUGAL_EXPECT(start <= end);
  advance(sender, start);
  nodes_[sender].tx_until = std::max(nodes_[sender].tx_until, end);
}

void EnergyModel::on_rx(NodeId receiver, SimTime start, SimTime end) {
  FRUGAL_EXPECT(start <= end);
  advance(receiver, start);
  nodes_[receiver].rx_until = std::max(nodes_[receiver].rx_until, end);
}

void EnergyModel::on_up_changed(NodeId node, bool up, SimTime at) {
  advance(node, at);
  nodes_[node].up = up;
}

void EnergyModel::on_sleep_changed(NodeId node, bool sleeping, SimTime at) {
  advance(node, at);
  nodes_[node].sleeping = sleeping;
}

double EnergyModel::spent_j(NodeId node) const {
  FRUGAL_EXPECT(node < nodes_.size());
  return total_j(nodes_[node]);
}

double EnergyModel::spent_j_at(NodeId node, SimTime t) const {
  FRUGAL_EXPECT(node < nodes_.size());
  const NodeAccount& account = nodes_[node];
  const double settled = total_j(account);
  if (t <= account.accounted_until || account.depleted) return settled;

  // Mirror advance()'s segment walk without touching the account: the flags
  // are constant over the unaccounted span, only tx/rx deadlines split it.
  double extra = 0.0;
  SimTime cursor = account.accounted_until;
  const double capacity = capacity_j(node);
  while (cursor < t) {
    const RadioState state = state_at(account, cursor);
    SimTime segment_end = t;
    if (state == RadioState::kTx) {
      segment_end = std::min(t, account.tx_until);
    } else if (state == RadioState::kRx) {
      segment_end = std::min(t, account.rx_until);
    }
    const double draw_w = draw_mw_by_state_[index_of(state)] / 1000.0;
    const double joules = draw_w * (segment_end - cursor).seconds();
    if (capacity > 0 && draw_w > 0 && settled + extra + joules >= capacity) {
      return capacity;  // the battery would empty inside this span
    }
    extra += joules;
    cursor = segment_end;
  }
  return settled + extra;
}

double EnergyModel::spent_in_state_j(NodeId node, RadioState state) const {
  FRUGAL_EXPECT(node < nodes_.size());
  return nodes_[node].spent_by_state_j[index_of(state)];
}

double EnergyModel::capacity_j(NodeId node) const {
  FRUGAL_EXPECT(node < nodes_.size());
  return config_.battery_capacity_per_node_j.empty()
             ? config_.battery_capacity_j
             : config_.battery_capacity_per_node_j[node];
}

double EnergyModel::charge_fraction_at(NodeId node, SimTime t) const {
  const double capacity = capacity_j(node);
  if (capacity <= 0) return 1.0;  // unlimited battery: always full
  const double remaining = capacity - spent_j_at(node, t);
  return std::clamp(remaining / capacity, 0.0, 1.0);
}

SimDuration EnergyModel::time_asleep(NodeId node) const {
  FRUGAL_EXPECT(node < nodes_.size());
  return nodes_[node].asleep;
}

bool EnergyModel::depleted(NodeId node) const {
  FRUGAL_EXPECT(node < nodes_.size());
  return nodes_[node].depleted;
}

std::optional<SimTime> EnergyModel::depleted_at(NodeId node) const {
  FRUGAL_EXPECT(node < nodes_.size());
  if (!nodes_[node].depleted) return std::nullopt;
  return nodes_[node].depleted_time;
}

double EnergyModel::draw_mw(RadioState state) const {
  return draw_mw_by_state_[index_of(state)];
}

}  // namespace frugal::energy
