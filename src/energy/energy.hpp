// Radio energy accounting: a per-node power-state machine plus an optional
// finite battery.
//
// The paper's whole premise is frugality under the power constraints of
// mobile ad-hoc devices, yet messages and bytes only proxy the real cost:
// what drains a battery is the *time the radio spends in each power state*.
// EnergyModel turns the medium's on-air reports (net::RadioActivityListener)
// into joules via a TX / RX / IDLE / SLEEP / OFF state machine with
// configurable draws — defaults are Feeney & Nilsson's measurements of a
// Lucent 802.11 WaveLAN card (INFOCOM 2001): 280 / 204 / 178 / 14 mA at
// 4.74 V for transmit / receive / idle-listen / doze.
//
// Accounting is lazy and exact: each node carries an `accounted_until`
// cursor and a piecewise-constant state description (tx-until, rx-until,
// up, sleeping); every state flip first integrates the elapsed span at the
// old draws, so the per-state joules are exact integrals of the radio's
// activity regardless of when queries happen. With a finite battery the
// depletion *instant* is solved in closed form inside the span that crosses
// the capacity (monotone in capacity by construction), and a callback lets
// the experiment layer kill the node through the existing crash machinery —
// a dead radio neither sends nor overhears, and draws nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/medium.hpp"
#include "util/time.hpp"
#include "util/types.hpp"

namespace frugal::energy {

/// Radio power states, cheapest first. OFF covers both churn blackouts and
/// battery death; SLEEP is 802.11 power-save doze (duty cycling).
enum class RadioState : std::uint8_t { kOff, kSleep, kIdle, kRx, kTx };
inline constexpr std::size_t kRadioStateCount = 5;

[[nodiscard]] const char* to_string(RadioState state);

/// Per-state draws in milliwatts. Defaults: Feeney & Nilsson (INFOCOM
/// 2001), Lucent IEEE 802.11 WaveLAN PC card at 4.74 V — tx 280 mA,
/// rx 204 mA, idle 178 mA, doze 14 mA.
struct RadioPowerProfile {
  double tx_mw = 1327.2;
  double rx_mw = 966.96;
  double idle_mw = 843.7;
  double sleep_mw = 66.4;
};

struct EnergyConfig {
  RadioPowerProfile radio;
  /// Battery capacity per node in joules; <= 0 means unlimited (metering
  /// only). For scale: idle-listening alone draws ~0.84 J/s, so a 300 J
  /// battery idles out in ~6 minutes; a phone battery is ~10-40 kJ.
  double battery_capacity_j = 0.0;
  /// Optional per-node battery capacities (heterogeneous fleets: some
  /// devices start with more charge than others). Empty — the default —
  /// gives every node the scalar `battery_capacity_j`; otherwise the size
  /// must equal the node count and entries <= 0 mean unlimited for that
  /// node.
  std::vector<double> battery_capacity_per_node_j;
  /// Fraction of each duty-cycle round the radio spends in power-save
  /// sleep (0 disables duty cycling; must stay < 1). The sleep window is
  /// the tail of each round; rounds are staggered across nodes by the
  /// experiment layer so the network never sleeps as one.
  double sleep_fraction = 0.0;
  /// Duty-cycle round length — align with the heartbeat period so the
  /// radio sleeps *between* heartbeat rounds.
  SimDuration duty_period = SimDuration::from_seconds(1.0);
  /// Battery-level sampling cadence: bounds how long a depleted radio can
  /// linger between frames before the experiment layer switches it off
  /// (the recorded depletion instant is exact regardless).
  SimDuration sample_period = SimDuration::from_seconds(1.0);
};

/// True when at least one node runs on a finite battery — the experiment
/// layer samples battery levels (so silent depleted radios still go dark)
/// exactly when this holds.
[[nodiscard]] bool any_finite_battery(const EnergyConfig& config);

class EnergyModel final : public net::RadioActivityListener {
 public:
  /// Invoked at most once per node, the first time its accumulated spend
  /// crosses the battery capacity. `at` is the exact crossing instant
  /// (which can precede the scheduler's current time — the crossing is
  /// solved inside the elapsed span).
  using DepletionCallback = std::function<void(NodeId node, SimTime at)>;

  EnergyModel(std::size_t node_count, EnergyConfig config);

  void set_depletion_callback(DepletionCallback callback) {
    on_depleted_ = std::move(callback);
  }

  // -- net::RadioActivityListener -------------------------------------------
  void before_tx(NodeId sender, SimTime now) override;
  void on_tx(NodeId sender, SimTime start, SimTime end) override;
  void on_rx(NodeId receiver, SimTime start, SimTime end) override;
  void on_up_changed(NodeId node, bool up, SimTime at) override;
  void on_sleep_changed(NodeId node, bool sleeping, SimTime at) override;

  /// Integrates every node's account up to `now` (depletion callbacks may
  /// fire from here). Call before reading spends, and periodically when a
  /// battery is configured so depleted radios actually go dark.
  void advance_all(SimTime now);
  /// Integrates one node's account up to `now`.
  void advance(NodeId node, SimTime now);

  // -- Queries (exact as of the last advance) -------------------------------
  [[nodiscard]] double spent_j(NodeId node) const;
  /// Projected total spend at `t` without mutating the account or firing the
  /// depletion callback — walks the same piecewise segments advance() would.
  /// Telemetry's windowed joules/s peeks here so observing a run cannot
  /// perturb its depletion schedule. For t <= accounted_until (or a depleted
  /// node) this is exactly spent_j(node).
  [[nodiscard]] double spent_j_at(NodeId node, SimTime t) const;
  [[nodiscard]] double spent_in_state_j(NodeId node, RadioState state) const;
  /// The node's battery capacity in joules (<= 0 = unlimited): the per-node
  /// entry when configured, else the scalar.
  [[nodiscard]] double capacity_j(NodeId node) const;
  /// Remaining charge as a fraction of capacity in [0, 1], projected at `t`
  /// without mutating the account (same walk as spent_j_at). Nodes with an
  /// unlimited battery always report 1.
  [[nodiscard]] double charge_fraction_at(NodeId node, SimTime t) const;
  [[nodiscard]] SimDuration time_asleep(NodeId node) const;
  [[nodiscard]] bool depleted(NodeId node) const;
  /// The exact crossing instant, when the node's battery emptied.
  [[nodiscard]] std::optional<SimTime> depleted_at(NodeId node) const;

  [[nodiscard]] double draw_mw(RadioState state) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const EnergyConfig& config() const { return config_; }

 private:
  struct NodeAccount {
    SimTime accounted_until;
    SimTime tx_until;  ///< in TX while t < tx_until (half-duplex: beats RX)
    SimTime rx_until;  ///< in RX while t < rx_until and not transmitting
    bool up = true;
    bool sleeping = false;
    bool depleted = false;
    SimTime depleted_time;
    double spent_by_state_j[kRadioStateCount] = {};
    SimDuration asleep;
  };

  [[nodiscard]] static double total_j(const NodeAccount& account);
  /// The piecewise state at `t` given the account's flags and deadlines.
  [[nodiscard]] static RadioState state_at(const NodeAccount& account,
                                           SimTime t);

  EnergyConfig config_;
  double draw_mw_by_state_[kRadioStateCount];
  std::vector<NodeAccount> nodes_;
  DepletionCallback on_depleted_;
};

}  // namespace frugal::energy
