#include "util/time.hpp"

#include <cstdio>

namespace frugal {

namespace {
std::string format_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6fs", s);
  return buf;
}
}  // namespace

std::string to_string(SimTime t) { return format_seconds(t.seconds()); }
std::string to_string(SimDuration d) { return format_seconds(d.seconds()); }

}  // namespace frugal
