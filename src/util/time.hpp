// Simulated-time representation.
//
// SimTime is a strong integer type counting microseconds since the start of
// the simulation. Integer ticks (rather than double seconds) keep event
// ordering exact and make runs bit-reproducible across platforms.
#pragma once

#include <compare>
#include <concepts>
#include <cstdint>
#include <limits>
#include <string>

namespace frugal {

class SimDuration;

/// A point in simulated time, in integer microseconds from simulation start.
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime from_us(std::int64_t us) {
    return SimTime{us};
  }
  [[nodiscard]] static constexpr SimTime from_ms(std::int64_t ms) {
    return SimTime{ms * 1000};
  }
  [[nodiscard]] static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e6)};
  }
  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(us_) / 1e6;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime& operator+=(SimDuration d);
  constexpr SimTime& operator-=(SimDuration d);

 private:
  explicit constexpr SimTime(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

/// A length of simulated time, in integer microseconds. May be negative in
/// intermediate arithmetic but all scheduling interfaces require >= 0.
class SimDuration {
 public:
  constexpr SimDuration() = default;

  [[nodiscard]] static constexpr SimDuration from_us(std::int64_t us) {
    return SimDuration{us};
  }
  [[nodiscard]] static constexpr SimDuration from_ms(std::int64_t ms) {
    return SimDuration{ms * 1000};
  }
  [[nodiscard]] static constexpr SimDuration from_seconds(double s) {
    return SimDuration{static_cast<std::int64_t>(s * 1e6)};
  }
  [[nodiscard]] static constexpr SimDuration zero() { return SimDuration{0}; }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(us_) / 1e6;
  }
  [[nodiscard]] constexpr bool is_negative() const { return us_ < 0; }

  friend constexpr auto operator<=>(SimDuration, SimDuration) = default;

  constexpr SimDuration& operator+=(SimDuration o) {
    us_ += o.us_;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration o) {
    us_ -= o.us_;
    return *this;
  }

 private:
  explicit constexpr SimDuration(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

[[nodiscard]] constexpr SimDuration operator+(SimDuration a, SimDuration b) {
  return SimDuration::from_us(a.us() + b.us());
}
[[nodiscard]] constexpr SimDuration operator-(SimDuration a, SimDuration b) {
  return SimDuration::from_us(a.us() - b.us());
}
template <std::integral I>
[[nodiscard]] constexpr SimDuration operator*(SimDuration a, I k) {
  return SimDuration::from_us(a.us() * static_cast<std::int64_t>(k));
}
template <std::integral I>
[[nodiscard]] constexpr SimDuration operator*(I k, SimDuration a) {
  return a * k;
}
[[nodiscard]] constexpr SimDuration operator*(SimDuration a, double k) {
  return SimDuration::from_us(
      static_cast<std::int64_t>(static_cast<double>(a.us()) * k));
}
template <std::integral I>
[[nodiscard]] constexpr SimDuration operator/(SimDuration a, I k) {
  return SimDuration::from_us(a.us() / static_cast<std::int64_t>(k));
}
[[nodiscard]] constexpr SimDuration operator/(SimDuration a, double k) {
  return SimDuration::from_us(
      static_cast<std::int64_t>(static_cast<double>(a.us()) / k));
}

[[nodiscard]] constexpr SimTime operator+(SimTime t, SimDuration d) {
  return SimTime::from_us(t.us() + d.us());
}
[[nodiscard]] constexpr SimTime operator-(SimTime t, SimDuration d) {
  return SimTime::from_us(t.us() - d.us());
}
[[nodiscard]] constexpr SimDuration operator-(SimTime a, SimTime b) {
  return SimDuration::from_us(a.us() - b.us());
}

constexpr SimTime& SimTime::operator+=(SimDuration d) {
  us_ += d.us();
  return *this;
}
constexpr SimTime& SimTime::operator-=(SimDuration d) {
  us_ -= d.us();
  return *this;
}

namespace time_literals {
[[nodiscard]] constexpr SimDuration operator""_sec(unsigned long long s) {
  return SimDuration::from_us(static_cast<std::int64_t>(s) * 1'000'000);
}
[[nodiscard]] constexpr SimDuration operator""_ms(unsigned long long ms) {
  return SimDuration::from_ms(static_cast<std::int64_t>(ms));
}
[[nodiscard]] constexpr SimDuration operator""_us(unsigned long long us) {
  return SimDuration::from_us(static_cast<std::int64_t>(us));
}
}  // namespace time_literals

/// Formats a time point as "12.345s" for logs and tables.
[[nodiscard]] std::string to_string(SimTime t);
[[nodiscard]] std::string to_string(SimDuration d);

}  // namespace frugal
