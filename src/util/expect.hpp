// Contract-checking macros in the spirit of the C++ Core Guidelines'
// Expects()/Ensures() (I.6, I.8). Violations are programming errors and
// abort with a message; they are enabled in all build types because the
// simulator's correctness depends on them and their cost is negligible
// relative to event processing.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace frugal::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violation: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace frugal::detail

#define FRUGAL_EXPECT(cond)                                               \
  ((cond) ? static_cast<void>(0)                                          \
          : ::frugal::detail::contract_failure("precondition", #cond,     \
                                               __FILE__, __LINE__))

#define FRUGAL_ENSURE(cond)                                               \
  ((cond) ? static_cast<void>(0)                                          \
          : ::frugal::detail::contract_failure("postcondition", #cond,    \
                                               __FILE__, __LINE__))

#define FRUGAL_ASSERT(cond)                                               \
  ((cond) ? static_cast<void>(0)                                          \
          : ::frugal::detail::contract_failure("invariant", #cond,        \
                                               __FILE__, __LINE__))
