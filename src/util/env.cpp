#include "util/env.hpp"

#include <cstdlib>
#include <string>

namespace frugal {

std::optional<std::string> env_string(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string{value};
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const auto value = env_string(name);
  if (!value) return fallback;
  try {
    return std::stoll(*value);
  } catch (...) {
    return fallback;
  }
}

double env_double(const char* name, double fallback) {
  const auto value = env_string(name);
  if (!value) return fallback;
  try {
    return std::stod(*value);
  } catch (...) {
    return fallback;
  }
}

bool env_bool(const char* name, bool fallback) {
  const auto value = env_string(name);
  if (!value) return fallback;
  return *value == "1" || *value == "true" || *value == "yes" ||
         *value == "on";
}

}  // namespace frugal
