// Shared small vocabulary types.
#pragma once

#include <cstdint>

namespace frugal {

/// Dense node index, 0..n-1 within one simulation.
using NodeId = std::uint32_t;

constexpr NodeId kInvalidNode = ~NodeId{0};

}  // namespace frugal
