#include "util/logging.hpp"

#include <cstdio>

namespace frugal {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel Logger::level() { return g_level; }
void Logger::set_level(LogLevel level) { g_level = level; }

void Logger::write(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace frugal
