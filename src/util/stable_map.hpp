// Deterministic-by-construction hash containers (the detlint fix path).
//
// det::hash_map / det::hash_set wrap the std unordered containers with
// iteration *removed*: there is no begin()/end(), so range-for loops,
// std:: algorithms and hash-order folds over the contents do not compile.
// The byte-identical contract (golden traces, shard merges, --jobs N
// equality) dies the moment anything order-sensitive — an FP sum, a
// broadcast, a trace line — happens in hash order, and hash order is
// exactly what plain unordered iteration hands out. These wrappers make
// the safe thing the only thing that compiles:
//
//   * point lookups and mutations forward to the unordered container
//     (O(1), same as before);
//   * order-sensitive consumers go through the explicit sorted accessors
//     (sorted_keys / sorted_values / for_each_sorted), which materialize
//     an ascending-key view;
//   * order-insensitive bulk removal goes through erase_if, whose result
//     (the surviving key set) is independent of visit order by
//     construction — the predicate sees one entry at a time and must not
//     accumulate across calls.
//
// The internal implementation necessarily iterates the unordered storage;
// this file is the single allowlisted site for that in tools/detlint.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace frugal::det {

/// Result of hash_map::try_emplace / emplace: the slot (always valid) and
/// whether this call created it.
template <class V>
struct InsertResult {
  V* value;
  bool inserted;
};

template <class K, class V, class Hash = std::hash<K>,
          class Eq = std::equal_to<K>>
class hash_map {
 public:
  using key_type = K;
  using mapped_type = V;

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }
  [[nodiscard]] bool contains(const K& key) const {
    return map_.contains(key);
  }
  [[nodiscard]] std::size_t count(const K& key) const {
    return map_.count(key);
  }

  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

  [[nodiscard]] V* find(const K& key) {
    const auto it = map_.find(key);
    return it != map_.end() ? &it->second : nullptr;
  }
  [[nodiscard]] const V* find(const K& key) const {
    const auto it = map_.find(key);
    return it != map_.end() ? &it->second : nullptr;
  }

  V& operator[](const K& key) { return map_[key]; }
  [[nodiscard]] V& at(const K& key) { return map_.at(key); }
  [[nodiscard]] const V& at(const K& key) const { return map_.at(key); }

  /// Inserts `key` mapped to V(args...) unless present. Never overwrites.
  template <class... Args>
  InsertResult<V> try_emplace(const K& key, Args&&... args) {
    const auto [it, inserted] =
        map_.try_emplace(key, std::forward<Args>(args)...);
    return {&it->second, inserted};
  }
  /// Alias of try_emplace, so ported call sites keep their shape.
  template <class... Args>
  InsertResult<V> emplace(const K& key, Args&&... args) {
    return try_emplace(key, std::forward<Args>(args)...);
  }

  std::size_t erase(const K& key) { return map_.erase(key); }

  /// Removes every entry matching `pred(const std::pair<const K, V>&)`.
  /// The surviving key set is visit-order independent as long as the
  /// predicate is pure per entry — do not accumulate across calls.
  template <class Pred>
  std::size_t erase_if(Pred pred) {
    return std::erase_if(map_, pred);
  }

  /// Set-semantics equality (element-wise, order-free).
  [[nodiscard]] bool operator==(const hash_map& other) const {
    return map_ == other.map_;
  }

  /// All keys, ascending. Requires operator< on K.
  [[nodiscard]] std::vector<K> sorted_keys() const {
    std::vector<K> keys;
    keys.reserve(map_.size());
    for (const auto& [key, value] : map_) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  /// Invokes `fn(const K&, V&)` for every entry in ascending key order.
  template <class Fn>
  void for_each_sorted(Fn fn) {
    for (auto* entry : sorted_entries()) fn(entry->first, entry->second);
  }
  /// Invokes `fn(const K&, const V&)` for every entry in ascending key
  /// order.
  template <class Fn>
  void for_each_sorted(Fn fn) const {
    std::vector<const std::pair<const K, V>*> entries;
    entries.reserve(map_.size());
    for (const auto& entry : map_) entries.push_back(&entry);
    std::sort(entries.begin(), entries.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    for (const auto* entry : entries) fn(entry->first, entry->second);
  }

 private:
  [[nodiscard]] std::vector<std::pair<const K, V>*> sorted_entries() {
    std::vector<std::pair<const K, V>*> entries;
    entries.reserve(map_.size());
    for (auto& entry : map_) entries.push_back(&entry);
    std::sort(entries.begin(), entries.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    return entries;
  }

  std::unordered_map<K, V, Hash, Eq> map_;
};

template <class K, class Hash = std::hash<K>, class Eq = std::equal_to<K>>
class hash_set {
 public:
  using key_type = K;

  [[nodiscard]] std::size_t size() const { return set_.size(); }
  [[nodiscard]] bool empty() const { return set_.empty(); }
  [[nodiscard]] bool contains(const K& key) const {
    return set_.contains(key);
  }

  void clear() { set_.clear(); }
  void reserve(std::size_t n) { set_.reserve(n); }

  /// Returns true when `key` was newly inserted.
  bool insert(const K& key) { return set_.insert(key).second; }
  std::size_t erase(const K& key) { return set_.erase(key); }

  template <class Pred>
  std::size_t erase_if(Pred pred) {
    return std::erase_if(set_, pred);
  }

  [[nodiscard]] bool operator==(const hash_set& other) const {
    return set_ == other.set_;
  }

  /// All values, ascending. Requires operator< on K.
  [[nodiscard]] std::vector<K> sorted_values() const {
    std::vector<K> values;
    values.reserve(set_.size());
    for (const K& value : set_) values.push_back(value);
    std::sort(values.begin(), values.end());
    return values;
  }

 private:
  std::unordered_set<K, Hash, Eq> set_;
};

}  // namespace frugal::det
