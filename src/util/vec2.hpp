// Minimal 2-D vector used for node positions and velocities (meters, m/s).
#pragma once

#include <cmath>
#include <compare>

namespace frugal {

struct Vec2 {
  double x = 0;
  double y = 0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(Vec2 a, double k) {
    return {a.x * k, a.y * k};
  }
  friend constexpr Vec2 operator*(double k, Vec2 a) { return a * k; }
  friend constexpr Vec2 operator/(Vec2 a, double k) {
    return {a.x / k, a.y / k};
  }
  friend constexpr bool operator==(Vec2, Vec2) = default;

  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] constexpr double norm_sq() const { return x * x + y * y; }

  /// Unit vector in the same direction; the zero vector maps to itself.
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    return n > 0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
[[nodiscard]] constexpr double distance_sq(Vec2 a, Vec2 b) {
  return (a - b).norm_sq();
}

}  // namespace frugal
