// Lightweight leveled logging.
//
// Off by default (Level::kWarn) so simulations stay quiet; examples raise it
// to show protocol activity. Not thread-safe by design: the simulator is
// single-threaded (deterministic discrete-event execution).
#pragma once

#include <sstream>
#include <string>

namespace frugal {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

class Logger {
 public:
  [[nodiscard]] static LogLevel level();
  static void set_level(LogLevel level);
  static void write(LogLevel level, const std::string& message);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_{level} {}
  ~LogLine() { Logger::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace frugal

#define FRUGAL_LOG(lvl)                                  \
  if (::frugal::LogLevel::lvl < ::frugal::Logger::level()) \
    ;                                                     \
  else                                                    \
    ::frugal::detail::LogLine(::frugal::LogLevel::lvl)
