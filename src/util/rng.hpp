// Deterministic random-number generation.
//
// All randomness in the simulator flows from a single 64-bit seed. Rng wraps
// xoshiro256++ seeded via splitmix64; `split()` derives statistically
// independent child streams so each component (mobility of node i, MAC
// jitter, workload, ...) owns its own generator and the schedule of one
// component cannot perturb another — a prerequisite for reproducible
// experiments and for the property tests.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/expect.hpp"

namespace frugal {

/// splitmix64 step; used for seeding and stream derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent child stream keyed by `stream`. Children with
  /// distinct keys (or from distinct parents) produce unrelated sequences.
  [[nodiscard]] Rng split(std::uint64_t stream) const {
    std::uint64_t sm = state_[0] ^ (state_[2] * 0x9E3779B97F4A7C15ULL) ^
                       (stream + 0x165667B19E3779F9ULL);
    return Rng{splitmix64(sm)};
  }

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() {
    return ~std::uint64_t{0};
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    FRUGAL_EXPECT(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0. Unbiased (rejection).
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t n) {
    FRUGAL_EXPECT(n > 0);
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    FRUGAL_EXPECT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_u64(span));
  }

  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  /// Picks an index in [0, weights.size()) proportionally to weights[i].
  template <typename Container>
  [[nodiscard]] std::size_t weighted_index(const Container& weights) {
    double total = 0;
    for (double w : weights) {
      FRUGAL_EXPECT(w >= 0);
      total += w;
    }
    FRUGAL_EXPECT(total > 0);
    double r = uniform() * total;
    std::size_t i = 0;
    for (double w : weights) {
      if (r < w) return i;
      r -= w;
      ++i;
    }
    return weights.size() - 1;  // numeric edge: land on the last bucket
  }

 private:
  explicit Rng(std::uint64_t derived_seed, int) = delete;

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Stable 64-bit hash of a string, for deriving streams from names.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace frugal
