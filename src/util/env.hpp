// Environment-variable configuration helpers.
//
// The benchmark harnesses scale with the machine/time budget available:
// FRUGAL_SEEDS, FRUGAL_CSV_DIR, ... This wraps std::getenv with typed,
// defaulted accessors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace frugal {

[[nodiscard]] std::optional<std::string> env_string(const char* name);
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);
[[nodiscard]] double env_double(const char* name, double fallback);
[[nodiscard]] bool env_bool(const char* name, bool fallback);

}  // namespace frugal
