// Simulation trace recording.
//
// A TraceRecorder collects timestamped protocol events (publications,
// deliveries, node up/down flips and periodic position samples) during a
// run and writes them as CSV for offline inspection/plotting. The examples
// and the debugging workflow use it; the figure harnesses do not (they only
// need aggregates).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "util/time.hpp"
#include "util/types.hpp"
#include "util/vec2.hpp"

namespace frugal::trace {

enum class TraceKind : std::uint8_t {
  kPublish,
  kDeliver,
  kNodeDown,
  kNodeUp,
  kPosition,
};

[[nodiscard]] const char* to_string(TraceKind kind);

struct TraceRecord {
  SimTime at;
  TraceKind kind = TraceKind::kPosition;
  NodeId node = kInvalidNode;
  /// For kPublish/kDeliver: the event involved.
  std::optional<core::EventId> event;
  /// For kPosition: where the node is.
  std::optional<Vec2> position;
};

class TraceRecorder {
 public:
  void publish(SimTime at, NodeId node, core::EventId event) {
    records_.push_back({at, TraceKind::kPublish, node, event, {}});
  }
  void deliver(SimTime at, NodeId node, core::EventId event) {
    records_.push_back({at, TraceKind::kDeliver, node, event, {}});
  }
  void node_down(SimTime at, NodeId node) {
    records_.push_back({at, TraceKind::kNodeDown, node, {}, {}});
  }
  void node_up(SimTime at, NodeId node) {
    records_.push_back({at, TraceKind::kNodeUp, node, {}, {}});
  }
  void position(SimTime at, NodeId node, Vec2 where) {
    records_.push_back({at, TraceKind::kPosition, node, {}, where});
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// Records of one kind, in time order (records are appended in time order
  /// by construction — the simulator is single-threaded).
  [[nodiscard]] std::vector<TraceRecord> filter(TraceKind kind) const;

  /// Writes "time_s,kind,node,event_publisher,event_seq,x,y" rows. Returns
  /// false when the file cannot be opened.
  [[nodiscard]] bool write_csv(const std::string& path) const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace frugal::trace
