#include "trace/trace.hpp"

#include <fstream>

namespace frugal::trace {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPublish:
      return "publish";
    case TraceKind::kDeliver:
      return "deliver";
    case TraceKind::kNodeDown:
      return "down";
    case TraceKind::kNodeUp:
      return "up";
    case TraceKind::kPosition:
      return "position";
  }
  return "?";
}

std::vector<TraceRecord> TraceRecorder::filter(TraceKind kind) const {
  std::vector<TraceRecord> out;
  for (const TraceRecord& record : records_) {
    if (record.kind == kind) out.push_back(record);
  }
  return out;
}

bool TraceRecorder::write_csv(const std::string& path) const {
  std::ofstream out{path};
  if (!out) return false;
  out << "time_s,kind,node,event_publisher,event_seq,x,y\n";
  for (const TraceRecord& record : records_) {
    out << record.at.seconds() << ',' << to_string(record.kind) << ','
        << record.node << ',';
    if (record.event.has_value()) {
      out << record.event->publisher << ',' << record.event->seq;
    } else {
      out << ',';
    }
    out << ',';
    if (record.position.has_value()) {
      out << record.position->x << ',' << record.position->y;
    } else {
      out << ',';
    }
    out << '\n';
  }
  return true;
}

}  // namespace frugal::trace
